// Package region implements hierarchical two-level aggregation for
// WAN-aware training: workers are grouped into regions (racks, sites,
// datacenters), each region's aggregator ingests its local workers'
// pushes over the fast local network, and only one stream per region
// crosses the slow inter-region link to the global shard tier.
//
// Two forwarding modes cover the fidelity/byte trade-off:
//
//   - Exact (default): the aggregator bundles its workers' wire messages
//     and forwards them verbatim, in worker order. The global tier
//     ingests exactly the byte stream a flat topology would have
//     produced, so model state is bit-identical to flat training for
//     every codec — the hierarchy changes only where bytes travel. The
//     optional entropy second stage codes each region's bundled stream
//     across tensor (and worker) boundaries, which is where cross-wire
//     redundancy lives.
//
//   - Recompress: the aggregator fuses local pushes into a per-region
//     gradient sum with the fused decode-accumulate kernels
//     (compress.DecompressAddInto over kernel.DecodeTernaryAddParallel
//     for ternary wires), then re-encodes ONE residual stream per tensor
//     with a region-owned error-accumulating compression context. The
//     slow link carries one coded set per region — W/R times fewer
//     streams — at the cost of a second quantization; the region's
//     error-accumulation buffer retries what the re-quantization drops,
//     exactly the paper's §3.1 argument applied at the aggregator.
//
// The Tier presents the same step-server surface the training driver
// already speaks (BeginStep / per-worker push sessions / FinishStep), so
// hierarchical topologies drop into package train unchanged.
package region

import (
	"encoding/binary"
	"fmt"
	"time"

	"threelc/internal/compress"
	"threelc/internal/entropy"
	"threelc/internal/nn"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

// Server is the global tier a region tier forwards to: the step-server
// surface of ps.Job and the sharded equivalents.
type Server interface {
	BeginStep()
	BeginPush(workerID int) ps.PushSession
	FinishStep() ([][]byte, time.Duration, error)
	AppendState(dst []byte) []byte
	RestoreState(src []byte) error
}

// Config shapes a region tier.
type Config struct {
	// Regions is the number of regional aggregators. Workers are assigned
	// contiguously (RegionOf), so every region is non-empty when
	// Workers >= Regions.
	Regions int
	// Workers is the global worker count.
	Workers int
	// Recompress selects the fused re-encode mode; false forwards worker
	// wires verbatim (bit-identical to flat training).
	Recompress bool
	// Entropy selects the entropy second stage on the inter-region link.
	// In exact mode it codes each region's bundled wire stream; in
	// recompress mode it wraps the region's re-encode contexts, so the
	// forwarded wires themselves carry compress.SchemeEntropy.
	Entropy compress.EntropyAlgo
	// Scheme and Opts configure the recompress contexts, normally the
	// run's own design (the region re-quantizes with the same codec).
	// MinCompressElems carries the small-tensor exemption: below it (or
	// for NoCompress tensors) the region forwards raw floats instead of
	// re-quantizing. Ignored in exact mode.
	Scheme           compress.Scheme
	Opts             compress.Options
	MinCompressElems int
	// Parallelism bounds the fused decode-accumulate fan-out per tensor.
	// Zero means work-proportional; 1 forces serial kernels (the
	// allocation-free configuration).
	Parallelism int
}

// RegionOf maps a worker to its region: contiguous balanced blocks, so
// worker 0 (the chief, batch-norm owner) is always in region 0.
func RegionOf(worker, workers, regions int) int {
	return worker * regions / workers
}

// Tier is a two-level aggregation topology over an inner global tier.
// Like the servers it wraps, a Tier is driven by a single-threaded step
// loop: BeginStep, one push session per worker (sessions ingest
// concurrently-produced tensors but are themselves opened and completed
// in worker order), then FinishStep.
type Tier struct {
	inner Server
	cfg   Config

	params []*nn.Param
	comp   []bool // per tensor: region re-quantizes (recompress mode)

	sessions []session

	// Exact mode: per-region bundles of forwarded worker wires.
	bundles [][]byte

	// Recompress mode.
	sums    [][]*tensor.Tensor      // [region][tensor] fused gradient sums
	dirty   [][]bool                // sums[r][i] holds this step's data
	ctx     [][]compress.Compressor // [region][tensor] re-encode contexts
	setBufs [][][]byte              // [region][tensor] recycled wire buffers
	ncWire  [][]byte                // worker-0 wires of NoCompress tensors, copied
	fuseDur time.Duration           // decode-accumulate time inside sessions

	codeBuf []byte // framed pull set, recycled
	scratch []byte // entropy coding scratch for WAN accounting
	wanPush []int  // per region, last completed step
	wanPull []int
}

// NewTier wraps inner with a region tier. params describes the model's
// tensor set (shapes and compression exemptions) — typically
// model.Params() of the global replica; the tier allocates its own
// aggregation buffers and never writes through params.
func NewTier(inner Server, params []*nn.Param, cfg Config) (*Tier, error) {
	if cfg.Regions < 1 {
		return nil, fmt.Errorf("region: Regions %d must be >= 1", cfg.Regions)
	}
	if cfg.Workers < cfg.Regions {
		return nil, fmt.Errorf("region: %d workers cannot populate %d regions", cfg.Workers, cfg.Regions)
	}
	t := &Tier{
		inner:    inner,
		cfg:      cfg,
		params:   params,
		sessions: make([]session, cfg.Workers),
		wanPush:  make([]int, cfg.Regions),
		wanPull:  make([]int, cfg.Regions),
	}
	for w := range t.sessions {
		t.sessions[w] = session{t: t, worker: w, region: RegionOf(w, cfg.Workers, cfg.Regions)}
	}
	if !cfg.Recompress {
		t.bundles = make([][]byte, cfg.Regions)
		return t, nil
	}

	t.comp = make([]bool, len(params))
	for i, p := range params {
		t.comp[i] = cfg.Scheme != compress.SchemeNone && !p.NoCompress &&
			p.W.Len() >= cfg.MinCompressElems
	}
	t.sums = make([][]*tensor.Tensor, cfg.Regions)
	t.dirty = make([][]bool, cfg.Regions)
	t.ctx = make([][]compress.Compressor, cfg.Regions)
	t.setBufs = make([][][]byte, cfg.Regions)
	t.ncWire = make([][]byte, len(params))
	for r := 0; r < cfg.Regions; r++ {
		t.sums[r] = make([]*tensor.Tensor, len(params))
		t.dirty[r] = make([]bool, len(params))
		t.ctx[r] = make([]compress.Compressor, len(params))
		t.setBufs[r] = make([][]byte, len(params))
		for i, p := range params {
			t.sums[r][i] = tensor.New(p.W.Shape()...)
			if p.NoCompress {
				continue // forwarded verbatim from worker 0, never fused
			}
			if t.comp[i] {
				o := cfg.Opts
				o.Entropy = cfg.Entropy
				o.Seed ^= 0x524547 ^ uint64(r)<<40 ^ uint64(i)<<16
				o.CodecParallelism = cfg.Parallelism
				t.ctx[r][i] = compress.New(cfg.Scheme, p.W.Shape(), o)
			} else {
				t.ctx[r][i] = compress.New(compress.SchemeNone, p.W.Shape(), compress.Options{})
			}
		}
	}
	return t, nil
}

// BeginStep starts a step on the inner tier and resets per-step region
// state.
func (t *Tier) BeginStep() {
	t.inner.BeginStep()
	t.fuseDur = 0
	if t.cfg.Recompress {
		for r := range t.dirty {
			for i := range t.dirty[r] {
				t.dirty[r][i] = false
			}
		}
		return
	}
	for r := range t.bundles {
		t.bundles[r] = t.bundles[r][:0]
	}
}

// BeginPush opens worker workerID's push session. Sessions are recycled
// per worker; open and complete them in worker order.
func (t *Tier) BeginPush(workerID int) ps.PushSession {
	s := &t.sessions[workerID]
	if !t.cfg.Recompress {
		s.fwd = t.inner.BeginPush(workerID)
	}
	return s
}

// AddPush ingests one worker's complete wire-set push — BeginPush, Set,
// End in a single call. It adapts the tier to drivers that speak
// ps.Job's AddPush surface (notably transport.Server's step loop, so a
// region aggregator can sit behind a real TCP front door). The returned
// duration is this push's share of the region's fused decode-accumulate
// time.
func (t *Tier) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	if workerID < 0 || workerID >= t.cfg.Workers {
		return 0, fmt.Errorf("region: push worker id %d out of range (%d workers)", workerID, t.cfg.Workers)
	}
	before := t.fuseDur
	s := t.BeginPush(workerID)
	if err := s.Set(wires); err != nil {
		return 0, err
	}
	if err := s.End(); err != nil {
		return 0, err
	}
	return t.fuseDur - before, nil
}

// session ingests one worker's push into its region.
type session struct {
	t      *Tier
	worker int
	region int
	fwd    ps.PushSession // exact mode: inner pass-through
}

func (s *session) Set(wires [][]byte) error {
	if len(wires) != len(s.t.params) {
		return fmt.Errorf("region: push has %d tensors, model has %d", len(wires), len(s.t.params))
	}
	for i, w := range wires {
		if err := s.Tensor(i, w); err != nil {
			return err
		}
	}
	return nil
}

func (s *session) Tensor(i int, wire []byte) error {
	t := s.t
	if i < 0 || i >= len(t.params) {
		return fmt.Errorf("region: push tensor index %d out of range (model has %d tensors)", i, len(t.params))
	}
	if !t.cfg.Recompress {
		// Exact mode: forward verbatim AND retain a framed copy in the
		// region's bundle — that bundle is what crosses the slow link.
		t.bundles[s.region] = appendFramed(t.bundles[s.region], wire)
		return s.fwd.Tensor(i, wire)
	}
	if t.params[i].NoCompress {
		// Batch-norm statistics have a single designated owner; the
		// region relays worker 0's wire untouched instead of fusing.
		if s.worker == 0 {
			t.ncWire[i] = append(t.ncWire[i][:0], wire...)
		}
		return nil
	}
	start := time.Now()
	var err error
	if !t.dirty[s.region][i] {
		t.dirty[s.region][i] = true
		err = compress.DecompressFirstAddInto(wire, t.sums[s.region][i], t.cfg.Parallelism)
	} else {
		err = compress.DecompressAddInto(wire, t.sums[s.region][i], t.cfg.Parallelism)
	}
	t.fuseDur += time.Since(start)
	if err != nil {
		return fmt.Errorf("region %d: push tensor %q: %w", s.region, t.params[i].Name, err)
	}
	return nil
}

func (s *session) End() error {
	if s.fwd != nil {
		err := s.fwd.End()
		s.fwd = nil
		return err
	}
	return nil
}

// FinishStep forwards each region's stream to the global tier (recompress
// mode; exact mode already forwarded inside the sessions), completes the
// inner step, and accounts the bytes each region moved across the
// inter-region link. The returned codec duration includes the regions'
// fuse and re-encode time on top of the inner tier's.
func (t *Tier) FinishStep() ([][]byte, time.Duration, error) {
	regionDur := t.fuseDur
	if t.cfg.Recompress {
		// Scale so the inner tier's division by its push count (one per
		// region) lands on the flat global mean: each region forwards
		// (R/W)·Σ_{w∈r} g_w, and (1/R)·Σ_r of that is (1/W)·Σ_w g_w.
		scale := float32(t.cfg.Regions) / float32(t.cfg.Workers)
		start := time.Now()
		for r := 0; r < t.cfg.Regions; r++ {
			set := t.setBufs[r]
			for i, p := range t.params {
				switch {
				case p.NoCompress:
					if r == 0 {
						set[i] = t.ncWire[i]
					} else {
						set[i] = nil
					}
				default:
					if !t.dirty[r][i] {
						return nil, 0, fmt.Errorf("region %d: tensor %q received no push this step", r, p.Name)
					}
					t.sums[r][i].Scale(scale)
					set[i] = t.ctx[r][i].CompressInto(t.sums[r][i], set[i][:0])
				}
			}
		}
		regionDur += time.Since(start)
		for r := 0; r < t.cfg.Regions; r++ {
			sess := t.inner.BeginPush(r)
			if err := sess.Set(t.setBufs[r]); err != nil {
				return nil, 0, err
			}
			if err := sess.End(); err != nil {
				return nil, 0, err
			}
			t.wanPush[r] = wireSetBytes(t.setBufs[r])
		}
	} else {
		for r := range t.bundles {
			t.wanPush[r] = t.wanLinkBytes(t.bundles[r])
		}
	}

	pulls, innerDur, err := t.inner.FinishStep()
	if err != nil {
		return nil, 0, err
	}
	// The shared pull crosses every region's slow link once; regions fan
	// it out locally. One coded size serves all regions (same bytes).
	t.codeBuf = t.codeBuf[:0]
	for _, w := range pulls {
		t.codeBuf = appendFramed(t.codeBuf, w)
	}
	pullBytes := t.wanLinkBytes(t.codeBuf)
	for r := range t.wanPull {
		t.wanPull[r] = pullBytes
	}
	return pulls, innerDur + regionDur, nil
}

// wanLinkBytes is the size of raw on the inter-region link: coded by the
// configured entropy stage with a one-byte stage tag (the stored
// fallback bounds the stage's overhead at that tag), or plain when the
// stage is off. Coding is performed, not estimated — the reported
// reduction is measured. (Recompress-mode push wires are already
// entropy-wrapped by their contexts and bypass this.)
func (t *Tier) wanLinkBytes(raw []byte) int {
	if len(raw) == 0 {
		return 0
	}
	switch t.cfg.Entropy {
	case compress.EntropyHuffman:
		t.scratch = entropy.HuffmanEncodeInto(t.scratch[:0], raw)
	case compress.EntropyLZ:
		t.scratch = entropy.LZEncodeInto(t.scratch[:0], raw)
	default:
		return len(raw)
	}
	if len(t.scratch) < len(raw) {
		return 1 + len(t.scratch)
	}
	return 1 + len(raw)
}

// WANBytes reports the bytes each region moved across the inter-region
// link in the last completed step: per-region forwarded push bytes and
// per-region pull bytes. The slices are recycled; copy to retain.
func (t *Tier) WANBytes() (push, pull []int) {
	return t.wanPush, t.wanPull
}

// AppendState serializes the tier's mutable state: the inner tier's blob
// (length-prefixed) plus, in recompress mode, every region re-encode
// context's error-accumulation state.
func (t *Tier) AppendState(dst []byte) []byte {
	le := binary.LittleEndian
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = t.inner.AppendState(dst)
	le.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	if !t.cfg.Recompress {
		return dst
	}
	for r := range t.ctx {
		for _, c := range t.ctx[r] {
			sf, ok := c.(compress.Stateful)
			if !ok {
				dst = append(dst, 0)
				continue
			}
			dst = append(dst, 1)
			lenAt := len(dst)
			dst = append(dst, 0, 0, 0, 0)
			dst = sf.AppendState(dst)
			le.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
		}
	}
	return dst
}

// RestoreState restores state captured by AppendState on an identically
// configured tier. Malformed input errors and never panics.
func (t *Tier) RestoreState(src []byte) error {
	le := binary.LittleEndian
	if len(src) < 4 {
		return fmt.Errorf("region: tier state truncated")
	}
	n := int(le.Uint32(src))
	src = src[4:]
	if len(src) < n {
		return fmt.Errorf("region: inner state truncated (%d of %d bytes)", len(src), n)
	}
	if err := t.inner.RestoreState(src[:n]); err != nil {
		return err
	}
	src = src[n:]
	if !t.cfg.Recompress {
		if len(src) != 0 {
			return fmt.Errorf("region: %d trailing tier state bytes", len(src))
		}
		return nil
	}
	for r := range t.ctx {
		for i, c := range t.ctx[r] {
			if len(src) < 1 {
				return fmt.Errorf("region: context %d/%d state truncated", r, i)
			}
			has := src[0]
			src = src[1:]
			sf, stateful := c.(compress.Stateful)
			switch has {
			case 0:
				if stateful {
					return fmt.Errorf("region: context %d/%d is stateful but checkpoint has no state for it", r, i)
				}
			case 1:
				if len(src) < 4 {
					return fmt.Errorf("region: context %d/%d state length truncated", r, i)
				}
				n := int(le.Uint32(src))
				src = src[4:]
				if len(src) < n || !stateful {
					return fmt.Errorf("region: context %d/%d state mismatch", r, i)
				}
				if err := sf.RestoreState(src[:n]); err != nil {
					return fmt.Errorf("region: context %d/%d: %w", r, i, err)
				}
				src = src[n:]
			default:
				return fmt.Errorf("region: corrupt context presence byte %d", has)
			}
		}
	}
	if len(src) != 0 {
		return fmt.Errorf("region: %d trailing tier state bytes", len(src))
	}
	return nil
}

// appendFramed appends [4B LE len][wire] to dst — the framing the
// bundled inter-region stream uses, matching the transport's wire-set
// element layout.
func appendFramed(dst, wire []byte) []byte {
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(wire)))
	dst = append(dst, b4[:]...)
	return append(dst, wire...)
}

// wireSetBytes is the framed size of a wire set on the inter-region
// link.
func wireSetBytes(wires [][]byte) int {
	n := 0
	for _, w := range wires {
		n += 4 + len(w)
	}
	return n
}
