package region

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"threelc/internal/compress"
	"threelc/internal/entropy"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

// recInner is a recording fake of the global tier: it captures every
// forwarded push verbatim and returns canned pulls, so tests can compare
// what crossed the region boundary byte for byte.
type recInner struct {
	tensors int
	pushIDs []int
	pushes  [][][]byte // per BeginPush, wire copies indexed by tensor
	pulls   [][]byte
	state   []byte // canned AppendState payload
	got     []byte // what RestoreState received
}

func (f *recInner) BeginStep() {
	f.pushIDs = f.pushIDs[:0]
	f.pushes = f.pushes[:0]
}

func (f *recInner) BeginPush(workerID int) ps.PushSession {
	f.pushIDs = append(f.pushIDs, workerID)
	f.pushes = append(f.pushes, make([][]byte, f.tensors))
	return &recSession{wires: f.pushes[len(f.pushes)-1]}
}

func (f *recInner) FinishStep() ([][]byte, time.Duration, error) {
	return f.pulls, 0, nil
}

func (f *recInner) AppendState(dst []byte) []byte { return append(dst, f.state...) }

func (f *recInner) RestoreState(src []byte) error {
	f.got = append(f.got[:0], src...)
	if !bytes.Equal(src, f.state) {
		return fmt.Errorf("recInner: state mismatch")
	}
	return nil
}

type recSession struct{ wires [][]byte }

func (s *recSession) Set(wires [][]byte) error {
	for i, w := range wires {
		if err := s.Tensor(i, w); err != nil {
			return err
		}
	}
	return nil
}

func (s *recSession) Tensor(i int, wire []byte) error {
	if i < 0 || i >= len(s.wires) {
		return fmt.Errorf("recSession: tensor %d out of range", i)
	}
	if wire == nil {
		s.wires[i] = nil
		return nil
	}
	s.wires[i] = append([]byte(nil), wire...)
	return nil
}

func (s *recSession) End() error { return nil }

func testParams(shapes [][]int, noCompress []bool) []*nn.Param {
	params := make([]*nn.Param, len(shapes))
	for i, sh := range shapes {
		params[i] = &nn.Param{
			Name:       fmt.Sprintf("t%d", i),
			W:          tensor.New(sh...),
			NoCompress: noCompress != nil && noCompress[i],
		}
	}
	return params
}

func randWires(t *testing.T, seed uint64, tensors, n int) [][]byte {
	t.Helper()
	rng := tensor.NewRNG(seed)
	wires := make([][]byte, tensors)
	for i := range wires {
		wires[i] = make([]byte, n+i*3)
		for j := range wires[i] {
			wires[i][j] = byte(rng.Uint64())
		}
	}
	return wires
}

// TestExactModePassThrough pins exact mode as a pure relay: every worker
// wire reaches the inner tier verbatim, in worker order, and the WAN
// accounting is the framed bundle size per region.
func TestExactModePassThrough(t *testing.T) {
	params := testParams([][]int{{8}, {5}}, nil)
	inner := &recInner{tensors: 2, pulls: [][]byte{{9, 9, 9}, {7}}}
	tier, err := NewTier(inner, params, Config{Regions: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	perWorker := make([][][]byte, 4)
	for w := range perWorker {
		perWorker[w] = randWires(t, uint64(w+1), 2, 10)
	}

	tier.BeginStep()
	for w := 0; w < 4; w++ {
		sess := tier.BeginPush(w)
		for i, wire := range perWorker[w] {
			if err := sess.Tensor(i, wire); err != nil {
				t.Fatal(err)
			}
		}
		if err := sess.End(); err != nil {
			t.Fatal(err)
		}
	}
	pulls, _, err := tier.FinishStep()
	if err != nil {
		t.Fatal(err)
	}

	if len(inner.pushIDs) != 4 {
		t.Fatalf("inner saw %d pushes, want 4", len(inner.pushIDs))
	}
	for w := 0; w < 4; w++ {
		if inner.pushIDs[w] != w {
			t.Fatalf("push order %v not worker order", inner.pushIDs)
		}
		for i := range perWorker[w] {
			if !bytes.Equal(inner.pushes[w][i], perWorker[w][i]) {
				t.Fatalf("worker %d tensor %d not forwarded verbatim", w, i)
			}
		}
	}
	if len(pulls) != 2 || !bytes.Equal(pulls[0], inner.pulls[0]) {
		t.Fatal("pulls not relayed from inner tier")
	}

	push, pull := tier.WANBytes()
	for r := 0; r < 2; r++ {
		want := 0
		for w := 2 * r; w < 2*r+2; w++ {
			for _, wire := range perWorker[w] {
				want += 4 + len(wire)
			}
		}
		if push[r] != want {
			t.Errorf("region %d WAN push bytes %d, want framed bundle %d", r, push[r], want)
		}
	}
	wantPull := 0
	for _, w := range inner.pulls {
		wantPull += 4 + len(w)
	}
	if pull[0] != wantPull || pull[1] != wantPull {
		t.Errorf("WAN pull bytes %v, want %d per region", pull, wantPull)
	}
}

// TestExactEntropyWANAccounting pins that the entropy stage's reported
// link bytes are the measured coded size (plus the one-byte stage tag),
// with the stored fallback bounding the overhead.
func TestExactEntropyWANAccounting(t *testing.T) {
	params := testParams([][]int{{16}}, nil)
	inner := &recInner{tensors: 1, pulls: [][]byte{bytes.Repeat([]byte{0xAB}, 400)}}
	tier, err := NewTier(inner, params, Config{Regions: 1, Workers: 2, Entropy: compress.EntropyHuffman})
	if err != nil {
		t.Fatal(err)
	}

	// Highly skewed wires: the coded stream must beat the plain bundle.
	skew := bytes.Repeat([]byte{0, 0, 0, 1}, 200)
	tier.BeginStep()
	for w := 0; w < 2; w++ {
		sess := tier.BeginPush(w)
		if err := sess.Tensor(0, skew); err != nil {
			t.Fatal(err)
		}
		sess.End()
	}
	if _, _, err := tier.FinishStep(); err != nil {
		t.Fatal(err)
	}

	var bundle []byte
	for w := 0; w < 2; w++ {
		bundle = appendFramed(bundle, skew)
	}
	coded := entropy.HuffmanEncodeInto(nil, bundle)
	want := 1 + len(coded)
	if len(coded) >= len(bundle) {
		want = 1 + len(bundle)
	}
	push, pull := tier.WANBytes()
	if push[0] != want {
		t.Errorf("WAN push bytes %d, want measured coded size %d", push[0], want)
	}
	if push[0] >= len(bundle) {
		t.Errorf("entropy stage did not shrink the skewed bundle: %d vs %d plain", push[0], len(bundle))
	}
	var framedPull []byte
	framedPull = appendFramed(framedPull, inner.pulls[0])
	codedPull := entropy.HuffmanEncodeInto(nil, framedPull)
	wantPull := 1 + len(codedPull)
	if len(codedPull) >= len(framedPull) {
		wantPull = 1 + len(framedPull)
	}
	if pull[0] != wantPull {
		t.Errorf("WAN pull bytes %d, want %d", pull[0], wantPull)
	}
}

// TestRecompressMatchesManual pins the fused re-encode against a manual
// reference: decode-accumulate each region's worker wires, scale by R/W,
// compress with an identically seeded context — the forwarded stream must
// match byte for byte.
func TestRecompressMatchesManual(t *testing.T) {
	shapes := [][]int{{64}, {4, 8}}
	params := testParams(shapes, nil)
	cfg := Config{
		Regions: 2, Workers: 4, Recompress: true,
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.0, ZeroRun: true},
		MinCompressElems: 1,
		Parallelism:      1,
	}
	inner := &recInner{tensors: 2, pulls: [][]byte{{1}, {2}}}
	tier, err := NewTier(inner, params, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Per-worker gradient wires from worker-owned 3LC contexts.
	rng := tensor.NewRNG(42)
	wires := make([][][]byte, 4) // [worker][tensor]
	grads := make([][]*tensor.Tensor, 4)
	for w := 0; w < 4; w++ {
		wires[w] = make([][]byte, 2)
		grads[w] = make([]*tensor.Tensor, 2)
		for i, sh := range shapes {
			g := tensor.New(sh...)
			for j := range g.Data() {
				g.Data()[j] = float32(rng.Norm())
			}
			grads[w][i] = g
			c := compress.New(cfg.Scheme, sh, compress.Options{Sparsity: 1.0, ZeroRun: true, Seed: uint64(100*w + i)})
			wires[w][i] = c.CompressInto(g, nil)
		}
	}

	tier.BeginStep()
	for w := 0; w < 4; w++ {
		sess := tier.BeginPush(w)
		if err := sess.Set(wires[w]); err != nil {
			t.Fatal(err)
		}
		sess.End()
	}
	if _, _, err := tier.FinishStep(); err != nil {
		t.Fatal(err)
	}

	if len(inner.pushIDs) != 2 || inner.pushIDs[0] != 0 || inner.pushIDs[1] != 1 {
		t.Fatalf("inner saw pushes %v, want one per region in order", inner.pushIDs)
	}
	for r := 0; r < 2; r++ {
		for i, sh := range shapes {
			sum := tensor.New(sh...)
			for k, w := range []int{2 * r, 2*r + 1} {
				var err error
				if k == 0 {
					err = compress.DecompressFirstAddInto(wires[w][i], sum, 1)
				} else {
					err = compress.DecompressAddInto(wires[w][i], sum, 1)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			sum.Scale(float32(2) / float32(4))
			o := cfg.Opts
			o.Entropy = cfg.Entropy
			o.Seed ^= 0x524547 ^ uint64(r)<<40 ^ uint64(i)<<16
			o.CodecParallelism = 1
			ref := compress.New(cfg.Scheme, sh, o)
			want := ref.CompressInto(sum, nil)
			if !bytes.Equal(inner.pushes[r][i], want) {
				t.Errorf("region %d tensor %d re-encoded wire differs from manual reference", r, i)
			}
		}
	}
}

// TestRecompressNoCompressRelay pins the batch-norm path: the exempt
// tensor's wire is relayed verbatim from worker 0 by region 0 and sent as
// nil by every other region (the global tier ignores non-chief owners).
func TestRecompressNoCompressRelay(t *testing.T) {
	params := testParams([][]int{{32}, {6}}, []bool{false, true})
	cfg := Config{
		Regions: 2, Workers: 4, Recompress: true,
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.0, ZeroRun: true},
		MinCompressElems: 1,
		Parallelism:      1,
	}
	inner := &recInner{tensors: 2, pulls: [][]byte{{1}, {2}}}
	tier, err := NewTier(inner, params, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ncWire := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}
	comp := compress.New(cfg.Scheme, []int{32}, compress.Options{Sparsity: 1.0, ZeroRun: true})
	g := tensor.New(32)
	rng := tensor.NewRNG(3)
	for j := range g.Data() {
		g.Data()[j] = float32(rng.Norm())
	}
	wire0 := comp.CompressInto(g, nil)

	tier.BeginStep()
	for w := 0; w < 4; w++ {
		sess := tier.BeginPush(w)
		if err := sess.Tensor(0, wire0); err != nil {
			t.Fatal(err)
		}
		nc := ncWire
		if w != 0 {
			nc = []byte{0xFF} // non-chief copies must be ignored
		}
		if err := sess.Tensor(1, nc); err != nil {
			t.Fatal(err)
		}
		sess.End()
	}
	if _, _, err := tier.FinishStep(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(inner.pushes[0][1], ncWire) {
		t.Errorf("region 0 forwarded %x for the exempt tensor, want worker 0's wire", inner.pushes[0][1])
	}
	if inner.pushes[1][1] != nil {
		t.Errorf("region 1 forwarded %x for the exempt tensor, want nil", inner.pushes[1][1])
	}
}

// TestTierStateRoundTrip pins checkpoint fidelity: a restored tier
// continues with byte-identical re-encoded streams (the region contexts'
// error-accumulation buffers survive the round trip).
func TestTierStateRoundTrip(t *testing.T) {
	shapes := [][]int{{48}}
	cfg := Config{
		Regions: 2, Workers: 4, Recompress: true,
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.5, ZeroRun: true},
		MinCompressElems: 1,
		Parallelism:      1,
	}
	innerState := []byte("inner-tier-blob")
	newTier := func() (*Tier, *recInner) {
		inner := &recInner{tensors: 1, pulls: [][]byte{{1}}, state: innerState}
		tier, err := NewTier(inner, testParams(shapes, nil), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tier, inner
	}
	a, innerA := newTier()

	step := func(tier *Tier, seed uint64) {
		t.Helper()
		rng := tensor.NewRNG(seed)
		g := tensor.New(48)
		tier.BeginStep()
		for w := 0; w < 4; w++ {
			for j := range g.Data() {
				g.Data()[j] = float32(rng.Norm())
			}
			c := compress.New(cfg.Scheme, shapes[0], compress.Options{Sparsity: 1.5, ZeroRun: true, Seed: seed + uint64(w)})
			sess := tier.BeginPush(w)
			if err := sess.Tensor(0, c.CompressInto(g, nil)); err != nil {
				t.Fatal(err)
			}
			sess.End()
		}
		if _, _, err := tier.FinishStep(); err != nil {
			t.Fatal(err)
		}
	}

	step(a, 10) // builds residual state in the region contexts
	blob := a.AppendState(nil)

	b, innerB := newTier()
	if err := b.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(innerB.got, innerState) {
		t.Fatal("inner state not round-tripped")
	}

	step(a, 20)
	step(b, 20)
	for r := 0; r < 2; r++ {
		if !bytes.Equal(innerA.pushes[r][0], innerB.pushes[r][0]) {
			t.Errorf("region %d re-encoded stream diverges after restore", r)
		}
	}

	// Malformed inputs must error, never panic.
	for name, src := range map[string][]byte{
		"empty":          nil,
		"truncated":      blob[:len(blob)-3],
		"trailing":       append(append([]byte(nil), blob...), 0xFF),
		"corrupt-header": append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, blob...),
	} {
		fresh, _ := newTier()
		if err := fresh.RestoreState(src); err == nil {
			t.Errorf("%s state accepted", name)
		}
	}
}

// TestTierValidationAndErrors pins the constructor and push error surface.
func TestTierValidationAndErrors(t *testing.T) {
	params := testParams([][]int{{8}}, nil)
	inner := &recInner{tensors: 1, pulls: [][]byte{{1}}}
	if _, err := NewTier(inner, params, Config{Regions: 0, Workers: 4}); err == nil {
		t.Error("Regions 0 accepted")
	}
	if _, err := NewTier(inner, params, Config{Regions: 5, Workers: 4}); err == nil {
		t.Error("more regions than workers accepted")
	}

	cfg := Config{
		Regions: 2, Workers: 4, Recompress: true,
		Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.0},
		MinCompressElems: 1, Parallelism: 1,
	}
	tier, err := NewTier(inner, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tier.BeginStep()
	sess := tier.BeginPush(0)
	if err := sess.Tensor(5, []byte{1}); err == nil {
		t.Error("out-of-range tensor index accepted")
	}
	if err := sess.Set([][]byte{{1}, {2}}); err == nil {
		t.Error("wrong-arity wire set accepted")
	}
	sess.End()
	// No worker pushed tensor 0 with a decodable wire: FinishStep must
	// refuse to forward an undefined region sum.
	if _, _, err := tier.FinishStep(); err == nil {
		t.Error("FinishStep accepted a step with missing pushes")
	}
}

// TestRegionOf pins the contiguous assignment (chief stays in region 0).
func TestRegionOf(t *testing.T) {
	if RegionOf(0, 10, 3) != 0 {
		t.Error("chief not in region 0")
	}
	counts := make([]int, 3)
	last := 0
	for w := 0; w < 10; w++ {
		r := RegionOf(w, 10, 3)
		if r < last {
			t.Fatalf("assignment not contiguous at worker %d", w)
		}
		last = r
		counts[r]++
	}
	for r, c := range counts {
		if c < 3 || c > 4 {
			t.Errorf("region %d has %d workers, want balanced 3-4", r, c)
		}
	}
}

// BenchmarkHierarchicalPushPull measures a full hierarchical step against
// a real parameter-server inner tier: 4 workers in 2 regions, fused
// recompress with the entropy second stage on the WAN leg. Steady state
// must be allocation-free (gated in CI).
func BenchmarkHierarchicalPushPull(b *testing.B) {
	model := nn.NewMLP(256, []int{64}, 8, 1)
	psCfg := ps.Config{
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.0, ZeroRun: true},
		Workers:          4,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(4, 1000),
	}
	inner := ps.NewServer(model, psCfg)
	cfg := Config{
		Regions: 2, Workers: 4, Recompress: true,
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.0, ZeroRun: true},
		Entropy:          compress.EntropyHuffman,
		MinCompressElems: 1,
		Parallelism:      1,
	}
	tier, err := NewTier(inner, model.Params(), cfg)
	if err != nil {
		b.Fatal(err)
	}

	params := model.Params()
	rng := tensor.NewRNG(7)
	wires := make([][][]byte, 4)
	var wireBytes int
	for w := range wires {
		wires[w] = make([][]byte, len(params))
		for i, p := range params {
			g := tensor.New(p.W.Shape()...)
			for j := range g.Data() {
				g.Data()[j] = float32(rng.Norm())
			}
			c := compress.New(cfg.Scheme, p.W.Shape(), compress.Options{Sparsity: 1.0, ZeroRun: true, Seed: uint64(w*31 + i)})
			wires[w][i] = c.CompressInto(g, nil)
			wireBytes += len(wires[w][i])
		}
	}

	step := func() {
		tier.BeginStep()
		for w := 0; w < 4; w++ {
			sess := tier.BeginPush(w)
			if err := sess.Set(wires[w]); err != nil {
				b.Fatal(err)
			}
			if err := sess.End(); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := tier.FinishStep(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		step() // reach buffer steady state before measuring
	}
	b.SetBytes(int64(wireBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	push, pull := tier.WANBytes()
	wan := 0
	for r := range push {
		wan += push[r] + pull[r]
	}
	b.ReportMetric(float64(wan), "wan-bytes/step")
}
