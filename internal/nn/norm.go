package nn

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over (N, H, W),
// with learnable per-channel scale (gamma) and offset (beta), and running
// statistics for evaluation mode. Matching §5.1, its parameters are
// flagged NoCompress: the paper excludes batch-norm tensors from traffic
// compression because they are small.
type BatchNorm2D struct {
	Gamma *Param
	Beta  *Param

	c        int
	momentum float64
	eps      float64

	runningMean []float64
	runningVar  []float64

	// caches for backward
	xhat    []float32
	invStd  []float64
	shape   []int
	perChan int
}

// NewBatchNorm2D creates a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		Gamma:       newParam(name+".gamma", c),
		Beta:        newParam(name+".beta", c),
		c:           c,
		momentum:    0.9,
		eps:         1e-5,
		runningMean: make([]float64, c),
		runningVar:  make([]float64, c),
	}
	bn.Gamma.W.Fill(1)
	bn.Gamma.NoCompress = true
	bn.Beta.NoCompress = true
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// Forward normalizes x ([N, C, H, W]).
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 || shape[1] != bn.c {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) got input shape %v", bn.c, shape))
	}
	n, h, w := shape[0], shape[2], shape[3]
	plane := h * w
	count := n * plane

	y := tensor.New(shape...)
	xd, yd := x.Data(), y.Data()
	gd, bd := bn.Gamma.W.Data(), bn.Beta.W.Data()

	bn.shape = append(bn.shape[:0], shape...)
	bn.perChan = count
	if cap(bn.xhat) < len(xd) {
		bn.xhat = make([]float32, len(xd))
	}
	bn.xhat = bn.xhat[:len(xd)]
	if cap(bn.invStd) < bn.c {
		bn.invStd = make([]float64, bn.c)
	}
	bn.invStd = bn.invStd[:bn.c]

	for c := 0; c < bn.c; c++ {
		var mean, variance float64
		if train {
			var sum, sq float64
			for b := 0; b < n; b++ {
				base := (b*bn.c + c) * plane
				for i := 0; i < plane; i++ {
					v := float64(xd[base+i])
					sum += v
					sq += v * v
				}
			}
			mean = sum / float64(count)
			variance = sq/float64(count) - mean*mean
			if variance < 0 {
				variance = 0
			}
			bn.runningMean[c] = bn.momentum*bn.runningMean[c] + (1-bn.momentum)*mean
			bn.runningVar[c] = bn.momentum*bn.runningVar[c] + (1-bn.momentum)*variance
		} else {
			mean = bn.runningMean[c]
			variance = bn.runningVar[c]
		}
		invStd := 1 / math.Sqrt(variance+bn.eps)
		bn.invStd[c] = invStd
		g, bta := gd[c], bd[c]
		for b := 0; b < n; b++ {
			base := (b*bn.c + c) * plane
			for i := 0; i < plane; i++ {
				xh := float32((float64(xd[base+i]) - mean) * invStd)
				bn.xhat[base+i] = xh
				yd[base+i] = g*xh + bta
			}
		}
	}
	return y
}

// Backward computes dgamma, dbeta, and dx using the standard batch-norm
// gradient (training-mode statistics).
func (bn *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	shape := bn.shape
	n, h, w := shape[0], shape[2], shape[3]
	plane := h * w
	count := float64(bn.perChan)

	dx := tensor.New(shape...)
	dd, dxd := dout.Data(), dx.Data()
	gd := bn.Gamma.W.Data()
	ggd, gbd := bn.Gamma.G.Data(), bn.Beta.G.Data()

	for c := 0; c < bn.c; c++ {
		var sumDy, sumDyXhat float64
		for b := 0; b < n; b++ {
			base := (b*bn.c + c) * plane
			for i := 0; i < plane; i++ {
				dy := float64(dd[base+i])
				sumDy += dy
				sumDyXhat += dy * float64(bn.xhat[base+i])
			}
		}
		ggd[c] += float32(sumDyXhat)
		gbd[c] += float32(sumDy)
		scale := float64(gd[c]) * bn.invStd[c]
		for b := 0; b < n; b++ {
			base := (b*bn.c + c) * plane
			for i := 0; i < plane; i++ {
				dy := float64(dd[base+i])
				xh := float64(bn.xhat[base+i])
				dxd[base+i] = float32(scale * (dy - sumDy/count - xh*sumDyXhat/count))
			}
		}
	}
	return dx
}

// Params returns gamma and beta (both NoCompress).
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// RunningStats exposes the running mean and variance slices (aliased, not
// copied) for checkpointing and cross-model synchronization.
func (bn *BatchNorm2D) RunningStats() (mean, variance []float64) {
	return bn.runningMean, bn.runningVar
}
