package nn

import (
	"testing"

	"threelc/internal/tensor"
)

func TestMaxPoolForward(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D()
	y := p.Forward(x, true)
	want := []float32{4, 8, -1, 9}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p := NewMaxPool2D()
	p.Forward(x, true)
	dx := p.Backward(tensor.FromSlice([]float32{10}, 1, 1, 1, 1))
	// Gradient routes to position of 4 (index 3).
	want := []float32{0, 0, 0, 10}
	for i, w := range want {
		if dx.Data()[i] != w {
			t.Errorf("dx[%d] = %v, want %v", i, dx.Data()[i], w)
		}
	}
}

func TestMaxPoolOddDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd spatial dims")
		}
	}()
	NewMaxPool2D().Forward(tensor.New(1, 1, 3, 3), true)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := &Model{
		Net: NewSequential(
			NewConv2D("conv", 1, 2, 3, 1, 1, rng),
			NewMaxPool2D(),
			NewFlatten(),
			NewLinear("head", 2*2*2, 2, rng),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(2, 1, 4, 4)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 1}, 3e-2)
}

func TestVGGNanoForwardAndParamRatio(t *testing.T) {
	vggCfg := DefaultVGGNano()
	vgg := NewVGGNano(vggCfg)
	x := tensor.New(2, 3, 16, 16)
	logits := vgg.Net.Forward(x, true)
	if s := logits.Shape(); len(s) != 2 || s[1] != 10 {
		t.Fatalf("VGGNano logits shape %v", s)
	}

	// The paper's architectural contrast (§5.2): VGG-style nets carry
	// far more parameters than residual nets of comparable depth/width,
	// because of the fully-connected head.
	res := NewMicroResNet(DefaultMicroResNet())
	if vgg.NumParams() < 2*res.NumParams() {
		t.Errorf("VGGNano (%d params) should far exceed MicroResNet (%d params)",
			vgg.NumParams(), res.NumParams())
	}
}

func TestVGGNanoTrains(t *testing.T) {
	cfg := DefaultVGGNano()
	cfg.StageChannels = []int{4}
	cfg.HiddenFC = 32
	cfg.ImageSize = 8
	m := NewVGGNano(cfg)
	rng := tensor.NewRNG(11)
	x := tensor.New(4, 3, 8, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 3}
	first := m.TrainStep(x, labels)
	var last float64
	for i := 0; i < 30; i++ {
		last = m.TrainStep(x, labels)
		for _, p := range m.Params() {
			p.W.AXPY(-0.05, p.G)
		}
	}
	if last >= first {
		t.Errorf("VGGNano loss did not decrease: %v -> %v", first, last)
	}
}
