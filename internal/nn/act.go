package nn

import (
	"fmt"

	"threelc/internal/tensor"
)

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero, remembering the mask for backward.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d := x.Data()
	y := tensor.New(x.Shape()...)
	yd := y.Data()
	if cap(r.mask) < len(d) {
		r.mask = make([]bool, len(d))
	}
	r.mask = r.mask[:len(d)]
	for i, v := range d {
		if v > 0 {
			yd[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return y
}

// Backward zeroes gradients where the input was non-positive.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dd := dout.Data()
	dx := tensor.New(dout.Shape()...)
	dxd := dx.Data()
	for i, m := range r.mask {
		if m {
			dxd[i] = dd[i]
		}
	}
	return dx
}

// Params returns nil (ReLU has no parameters).
func (r *ReLU) Params() []*Param { return nil }

// GlobalAvgPool reduces [N, C, H, W] to [N, C] by averaging each plane,
// the standard ResNet classification head.
type GlobalAvgPool struct {
	shape []int
}

// NewGlobalAvgPool creates the pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool wants NCHW, got %v", shape))
	}
	n, c, h, w := shape[0], shape[1], shape[2], shape[3]
	g.shape = append(g.shape[:0], shape...)
	plane := h * w
	inv := 1 / float32(plane)
	y := tensor.New(n, c)
	xd, yd := x.Data(), y.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * plane
			var s float32
			for i := 0; i < plane; i++ {
				s += xd[base+i]
			}
			yd[b*c+ch] = s * inv
		}
	}
	return y
}

// Backward broadcasts the pooled gradient uniformly over each plane.
func (g *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.shape[0], g.shape[1], g.shape[2], g.shape[3]
	plane := h * w
	inv := 1 / float32(plane)
	dx := tensor.New(n, c, h, w)
	dd, dxd := dout.Data(), dx.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			gv := dd[b*c+ch] * inv
			base := (b*c + ch) * plane
			for i := 0; i < plane; i++ {
				dxd[base+i] = gv
			}
		}
	}
	return dx
}

// Params returns nil.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes [N, ...] to [N, D].
type Flatten struct {
	shape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	f.shape = append(f.shape[:0], shape...)
	n := shape[0]
	d := x.Len() / n
	return x.Reshape(n, d)
}

// Backward restores the original shape.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.shape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }
