package nn

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

// Linear is a fully-connected layer: y = x W^T + b with x of shape
// [N, in], W of shape [out, in], b of shape [out].
type Linear struct {
	Weight *Param
	Bias   *Param

	in, out int
	x       *tensor.Tensor // cached input for backward
}

// NewLinear creates a fully-connected layer with He-normal initialized
// weights and zero bias.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		Weight: newParam(name+".weight", out, in),
		Bias:   newParam(name+".bias", out),
		in:     in,
		out:    out,
	}
	std := math.Sqrt(2 / float64(in))
	tensor.FillNormal(l.Weight.W, std, rng)
	return l
}

// Forward computes y[n,o] = sum_i x[n,i] * W[o,i] + b[o].
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 2 || shape[1] != l.in {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got input shape %v", l.in, l.out, shape))
	}
	n := shape[0]
	l.x = x
	y := tensor.New(n, l.out)
	xd, wd, bd, yd := x.Data(), l.Weight.W.Data(), l.Bias.W.Data(), y.Data()
	for r := 0; r < n; r++ {
		xrow := xd[r*l.in : (r+1)*l.in]
		yrow := yd[r*l.out : (r+1)*l.out]
		for o := 0; o < l.out; o++ {
			wrow := wd[o*l.in : (o+1)*l.in]
			var s float32
			for i, xv := range xrow {
				s += xv * wrow[i]
			}
			yrow[o] = s + bd[o]
		}
	}
	return y
}

// Backward computes parameter gradients and returns dx.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := l.x.Shape()[0]
	dx := tensor.New(n, l.in)
	xd, wd := l.x.Data(), l.Weight.W.Data()
	gd, bd := l.Weight.G.Data(), l.Bias.G.Data()
	dd, dxd := dout.Data(), dx.Data()
	for r := 0; r < n; r++ {
		xrow := xd[r*l.in : (r+1)*l.in]
		drow := dd[r*l.out : (r+1)*l.out]
		dxrow := dxd[r*l.in : (r+1)*l.in]
		for o := 0; o < l.out; o++ {
			g := drow[o]
			if g == 0 {
				continue
			}
			bd[o] += g
			grow := gd[o*l.in : (o+1)*l.in]
			wrow := wd[o*l.in : (o+1)*l.in]
			for i, xv := range xrow {
				grow[i] += g * xv
				dxrow[i] += g * wrow[i]
			}
		}
	}
	return dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }
