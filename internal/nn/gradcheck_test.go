package nn

import (
	"math"
	"testing"

	"threelc/internal/tensor"
)

// numericalGrad estimates d(loss)/d(w) for one scalar w by central
// differences, where loss() re-runs the full forward pass.
func numericalGrad(w *float32, loss func() float64, eps float32) float64 {
	orig := *w
	*w = orig + eps
	lp := loss()
	*w = orig - eps
	lm := loss()
	*w = orig
	return (lp - lm) / (2 * float64(eps))
}

// checkModelGradients verifies analytic gradients of every parameter
// against finite differences on a fixed batch.
func checkModelGradients(t *testing.T, m *Model, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	m.TrainStep(x, labels)
	loss := func() float64 {
		logits := m.Net.Forward(x, true)
		return m.Loss.Forward(logits, labels)
	}
	for _, p := range m.Params() {
		wd := p.W.Data()
		gd := p.G.Data()
		// Spot-check a handful of coordinates per tensor.
		stride := len(wd)/5 + 1
		for i := 0; i < len(wd); i += stride {
			num := numericalGrad(&wd[i], loss, 1e-2)
			ana := float64(gd[i])
			diff := math.Abs(num - ana)
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if diff/scale > tol {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, ana, num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := &Model{
		Net:  NewSequential(NewLinear("fc", 6, 4, rng)),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(3, 6)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 2, 3}, 2e-2)
}

func TestMLPGradients(t *testing.T) {
	m := NewMLP(8, []int{5}, 3, 2)
	rng := tensor.NewRNG(3)
	x := tensor.New(4, 8)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 1, 2, 0}, 5e-2)
}

func TestConvGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := &Model{
		Net: NewSequential(
			NewConv2D("conv", 2, 3, 3, 1, 1, rng),
			NewGlobalAvgPool(),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(2, 2, 5, 5)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 2}, 2e-2)
}

func TestConvStrideGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := &Model{
		Net: NewSequential(
			NewConv2D("conv", 1, 2, 3, 2, 1, rng),
			NewFlatten(),
			NewLinear("head", 2*3*3, 2, rng),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(2, 1, 6, 6)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 1}, 3e-2)
}

func TestBatchNorm2DGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	m := &Model{
		Net: NewSequential(
			NewConv2D("conv", 1, 2, 3, 1, 1, rng),
			NewBatchNorm2D("bn", 2),
			NewReLU(),
			NewGlobalAvgPool(),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(3, 1, 4, 4)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 1, 0}, 6e-2)
}

func TestBatchNorm1DGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	m := &Model{
		Net: NewSequential(
			NewLinear("fc", 5, 4, rng),
			NewBatchNorm1D("bn", 4),
			NewReLU(),
			NewLinear("head", 4, 3, rng),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(4, 5)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 1, 2, 1}, 6e-2)
}

func TestResidualBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	m := &Model{
		Net: NewSequential(
			NewResidualBlock("block", 2, 2, 1, rng), // identity shortcut
			NewGlobalAvgPool(),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(2, 2, 4, 4)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 1}, 8e-2)
}

func TestResidualBlockProjectionGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := &Model{
		Net: NewSequential(
			NewResidualBlock("block", 2, 4, 2, rng), // projection shortcut
			NewGlobalAvgPool(),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(2, 2, 4, 4)
	tensor.FillNormal(x, 1, rng)
	checkModelGradients(t, m, x, []int{0, 3}, 8e-2)
}
