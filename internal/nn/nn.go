// Package nn is a compact neural-network substrate with explicit
// forward/backward passes, built so the parameter-server runtime can train
// real models and produce real gradient tensors for the compression
// pipeline to chew on.
//
// The paper trains ResNet-110 on CIFAR-10 on GPUs; no Go deep-learning
// framework (or GPU) exists in this environment, so this package provides
// the closest CPU-trainable equivalent: linear and convolutional layers,
// batch normalization, ReLU, residual blocks with identity mappings, and
// softmax cross-entropy — enough to build "MicroResNet" models that share
// ResNet's architectural signature (identity skips, batch norm, small
// parameter-to-computation ratio).
//
// Design notes:
//   - Activations flow as flat tensors with explicit [N, ...] shapes.
//   - Each layer owns its parameters as named Params; the parameter server
//     compresses per-Param tensors, exactly matching the paper's
//     one-compression-context-per-layer-tensor model (§3).
//   - Batch-norm parameters are flagged NoCompress, reproducing §5.1's
//     exemption of small layers from compression.
package nn

import (
	"fmt"

	"threelc/internal/tensor"
)

// Param is a named trainable tensor with its gradient.
type Param struct {
	// Name uniquely identifies the tensor within a model (e.g.
	// "block2.conv1.weight"); the parameter server keys compression
	// contexts by it.
	Name string
	// W holds the parameter values.
	W *tensor.Tensor
	// G accumulates the gradient of the loss w.r.t. W for the current
	// batch. Layers add into G; the optimizer zeroes it.
	G *tensor.Tensor
	// NoCompress marks small tensors (batch norm scales/offsets) that the
	// training pipeline transmits uncompressed, per §5.1.
	NoCompress bool
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is one differentiable module. Forward computes outputs from
// inputs; Backward consumes d(loss)/d(output) and returns d(loss)/d(input),
// accumulating parameter gradients along the way. Layers cache whatever
// they need between Forward and Backward, so a layer instance processes
// one batch at a time.
type Layer interface {
	// Forward runs the layer on x. train toggles training-time behavior
	// (batch-norm statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates dout back through the most recent Forward.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params concatenates all layers' parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Model is a network plus its loss head.
type Model struct {
	Net  *Sequential
	Loss *SoftmaxCrossEntropy
}

// Params returns the model's trainable parameters in a stable order.
func (m *Model) Params() []*Param { return m.Net.Params() }

// NumParams returns the total number of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Len()
	}
	return n
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// TrainStep runs forward + backward on one batch and returns the mean loss.
// Gradients are accumulated into the Params' G tensors (zeroed first).
func (m *Model) TrainStep(x *tensor.Tensor, labels []int) float64 {
	m.ZeroGrad()
	logits := m.Net.Forward(x, true)
	loss := m.Loss.Forward(logits, labels)
	dlogits := m.Loss.Backward()
	m.Net.Backward(dlogits)
	return loss
}

// Predict returns the argmax class for each example in the batch.
func (m *Model) Predict(x *tensor.Tensor) []int {
	logits := m.Net.Forward(x, false)
	shape := logits.Shape()
	if len(shape) != 2 {
		panic(fmt.Sprintf("nn: Predict wants [N, classes] logits, got %v", shape))
	}
	n, c := shape[0], shape[1]
	d := logits.Data()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best, bi := d[i*c], 0
		for j := 1; j < c; j++ {
			if d[i*c+j] > best {
				best, bi = d[i*c+j], j
			}
		}
		out[i] = bi
	}
	return out
}

// Accuracy evaluates top-1 accuracy of the model on (x, labels).
func (m *Model) Accuracy(x *tensor.Tensor, labels []int) float64 {
	pred := m.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// CopyParamsFrom copies all parameter values from src (same architecture).
func (m *Model) CopyParamsFrom(src *Model) {
	sp := src.Params()
	dp := m.Params()
	if len(sp) != len(dp) {
		panic("nn: CopyParamsFrom architecture mismatch")
	}
	for i := range dp {
		dp[i].W.CopyFrom(sp[i].W)
	}
}
