package nn

import (
	"threelc/internal/tensor"
)

// ResidualBlock is a two-convolution residual unit with identity mapping:
//
//	y = ReLU(BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x))
//
// When the block changes the channel count or stride, the shortcut is a
// 1x1 strided convolution + batch norm (ResNet "option B"); otherwise it
// is the identity. This is the architectural signature of ResNet-110 the
// paper trains (§5.2: "identity mappings are commonly found in
// high-accuracy neural network architectures").
type ResidualBlock struct {
	conv1 *Conv2D
	bn1   *BatchNorm2D
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm2D

	projConv *Conv2D      // nil for identity shortcut
	projBN   *BatchNorm2D // nil for identity shortcut

	reluOut *ReLU

	x *tensor.Tensor // cached block input for the shortcut backward
}

// NewResidualBlock builds a block mapping inC channels to outC with the
// given stride on the first convolution.
func NewResidualBlock(name string, inC, outC, stride int, rng *tensor.RNG) *ResidualBlock {
	b := &ResidualBlock{
		conv1:   NewConv2D(name+".conv1", inC, outC, 3, stride, 1, rng),
		bn1:     NewBatchNorm2D(name+".bn1", outC),
		relu1:   NewReLU(),
		conv2:   NewConv2D(name+".conv2", outC, outC, 3, 1, 1, rng),
		bn2:     NewBatchNorm2D(name+".bn2", outC),
		reluOut: NewReLU(),
	}
	if inC != outC || stride != 1 {
		b.projConv = NewConv2D(name+".proj", inC, outC, 1, stride, 0, rng)
		b.projBN = NewBatchNorm2D(name+".projbn", outC)
	}
	return b
}

// Forward runs the residual unit.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.x = x
	h := b.conv1.Forward(x, train)
	h = b.bn1.Forward(h, train)
	h = b.relu1.Forward(h, train)
	h = b.conv2.Forward(h, train)
	h = b.bn2.Forward(h, train)

	var sc *tensor.Tensor
	if b.projConv != nil {
		sc = b.projConv.Forward(x, train)
		sc = b.projBN.Forward(sc, train)
	} else {
		sc = x
	}
	h.Add(sc)
	return b.reluOut.Forward(h, train)
}

// Backward propagates through both the residual and shortcut paths.
func (b *ResidualBlock) Backward(dout *tensor.Tensor) *tensor.Tensor {
	d := b.reluOut.Backward(dout)

	// Residual path.
	dr := b.bn2.Backward(d)
	dr = b.conv2.Backward(dr)
	dr = b.relu1.Backward(dr)
	dr = b.bn1.Backward(dr)
	dr = b.conv1.Backward(dr)

	// Shortcut path: the addition passes d through unchanged.
	var ds *tensor.Tensor
	if b.projConv != nil {
		ds = b.projBN.Backward(d)
		ds = b.projConv.Backward(ds)
	} else {
		ds = d
	}
	dr.Add(ds)
	return dr
}

// Params returns all trainable tensors of the block.
func (b *ResidualBlock) Params() []*Param {
	ps := append(b.conv1.Params(), b.bn1.Params()...)
	ps = append(ps, b.conv2.Params()...)
	ps = append(ps, b.bn2.Params()...)
	if b.projConv != nil {
		ps = append(ps, b.projConv.Params()...)
		ps = append(ps, b.projBN.Params()...)
	}
	return ps
}
