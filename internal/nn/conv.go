package nn

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW tensors with square kernels,
// configurable stride, and zero padding. It uses direct convolution loops,
// which are plenty fast at the micro-model scales this repository trains.
type Conv2D struct {
	Weight *Param // [outC, inC, k, k]
	Bias   *Param // [outC]

	inC, outC, k, stride, pad int

	x *tensor.Tensor // cached input
}

// NewConv2D creates a convolution layer with He-normal initialization.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		Weight: newParam(name+".weight", outC, inC, k, k),
		Bias:   newParam(name+".bias", outC),
		inC:    inC, outC: outC, k: k, stride: stride, pad: pad,
	}
	fanIn := inC * k * k
	std := math.Sqrt(2 / float64(fanIn))
	tensor.FillNormal(c.Weight.W, std, rng)
	return c
}

func (c *Conv2D) outDim(in int) int {
	return (in+2*c.pad-c.k)/c.stride + 1
}

// Forward computes the convolution for x of shape [N, inC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 || shape[1] != c.inC {
		panic(fmt.Sprintf("nn: Conv2D(%d->%d) got input shape %v", c.inC, c.outC, shape))
	}
	n, h, w := shape[0], shape[2], shape[3]
	oh, ow := c.outDim(h), c.outDim(w)
	c.x = x
	y := tensor.New(n, c.outC, oh, ow)
	xd, wd, bd, yd := x.Data(), c.Weight.W.Data(), c.Bias.W.Data(), y.Data()

	for b := 0; b < n; b++ {
		for oc := 0; oc < c.outC; oc++ {
			bias := bd[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := bias
					iy0 := oy*c.stride - c.pad
					ix0 := ox*c.stride - c.pad
					for ic := 0; ic < c.inC; ic++ {
						xBase := ((b * c.inC) + ic) * h * w
						wBase := ((oc * c.inC) + ic) * c.k * c.k
						for ky := 0; ky < c.k; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							xRow := xBase + iy*w
							wRow := wBase + ky*c.k
							for kx := 0; kx < c.k; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								s += xd[xRow+ix] * wd[wRow+kx]
							}
						}
					}
					yd[((b*c.outC+oc)*oh+oy)*ow+ox] = s
				}
			}
		}
	}
	return y
}

// Backward computes dW, db and dx from dout of shape [N, outC, OH, OW].
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	xs := c.x.Shape()
	n, h, w := xs[0], xs[2], xs[3]
	os := dout.Shape()
	oh, ow := os[2], os[3]

	dx := tensor.New(n, c.inC, h, w)
	xd, wd := c.x.Data(), c.Weight.W.Data()
	gwd, gbd := c.Weight.G.Data(), c.Bias.G.Data()
	dd, dxd := dout.Data(), dx.Data()

	for b := 0; b < n; b++ {
		for oc := 0; oc < c.outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dd[((b*c.outC+oc)*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					gbd[oc] += g
					iy0 := oy*c.stride - c.pad
					ix0 := ox*c.stride - c.pad
					for ic := 0; ic < c.inC; ic++ {
						xBase := ((b * c.inC) + ic) * h * w
						wBase := ((oc * c.inC) + ic) * c.k * c.k
						for ky := 0; ky < c.k; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							xRow := xBase + iy*w
							wRow := wBase + ky*c.k
							for kx := 0; kx < c.k; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								gwd[wRow+kx] += g * xd[xRow+ix]
								dxd[xRow+ix] += g * wd[wRow+kx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }
