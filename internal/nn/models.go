package nn

import (
	"fmt"

	"threelc/internal/tensor"
)

// NewMLP builds a batch-normalized multi-layer perceptron:
// in -> [Linear -> BatchNorm1D -> ReLU]* -> classes. MLPs are the cheap
// workload for the traffic-compression experiments: their gradient tensors
// have the same zero-centred heavy-tailed statistics the compression
// pipeline targets, at a fraction of a CNN's compute cost. Batch
// normalization matches the paper's fully-normalized ResNet workload and
// is what keeps large-batch, worker-scaled learning rates stable under
// quantization noise.
func NewMLP(in int, hidden []int, classes int, seed uint64) *Model {
	rng := tensor.NewRNG(seed)
	var layers []Layer
	prev := in
	for i, h := range hidden {
		layers = append(layers, NewLinear(fmt.Sprintf("fc%d", i+1), prev, h, rng))
		layers = append(layers, NewBatchNorm1D(fmt.Sprintf("bn%d", i+1), h))
		layers = append(layers, NewReLU())
		prev = h
	}
	layers = append(layers, NewLinear("head", prev, classes, rng))
	return &Model{Net: NewSequential(layers...), Loss: NewSoftmaxCrossEntropy()}
}

// MicroResNetConfig sizes a MicroResNet.
type MicroResNetConfig struct {
	// InChannels is the image channel count (3 for CIFAR-like data).
	InChannels int
	// ImageSize is the square image side length.
	ImageSize int
	// StageChannels lists channel widths per stage (each stage after the
	// first downsamples 2x), e.g. {8, 16, 32}.
	StageChannels []int
	// BlocksPerStage is the residual-block count per stage; ResNet-110
	// uses 18 per stage at CIFAR scale, MicroResNet defaults to 1-2.
	BlocksPerStage int
	// Classes is the number of output classes.
	Classes int
	// Seed seeds weight initialization.
	Seed uint64
}

// DefaultMicroResNet returns a CPU-trainable stand-in for the paper's
// ResNet-110/CIFAR-10 workload: 3-channel 16x16 inputs, three stages,
// identity-mapping residual blocks, batch norm everywhere, global average
// pooling, and a linear classifier head.
func DefaultMicroResNet() MicroResNetConfig {
	return MicroResNetConfig{
		InChannels:     3,
		ImageSize:      16,
		StageChannels:  []int{8, 16, 32},
		BlocksPerStage: 1,
		Classes:        10,
		Seed:           1,
	}
}

// VGGNanoConfig sizes a VGGNano.
type VGGNanoConfig struct {
	InChannels int
	ImageSize  int
	// StageChannels lists the channel widths of the conv stages; each
	// stage ends with 2x2 max pooling.
	StageChannels []int
	// HiddenFC is the width of the fully-connected layer before the
	// classifier — the component that gives VGG-style networks their
	// large parameter-to-computation ratio (§5.2's contrast with ResNet).
	HiddenFC int
	Classes  int
	Seed     uint64
}

// DefaultVGGNano returns a small VGG-style network: plain conv stacks,
// max-pool downsampling, and a wide fully-connected head. Compared to
// MicroResNet it carries far more parameters per unit of computation,
// reproducing the architectural contrast the paper draws between VGG and
// ResNet (§5.2).
func DefaultVGGNano() VGGNanoConfig {
	return VGGNanoConfig{
		InChannels:    3,
		ImageSize:     16,
		StageChannels: []int{8, 16},
		HiddenFC:      256,
		Classes:       10,
		Seed:          1,
	}
}

// NewVGGNano builds the VGG-style network per the config.
func NewVGGNano(cfg VGGNanoConfig) *Model {
	rng := tensor.NewRNG(cfg.Seed)
	if len(cfg.StageChannels) == 0 {
		panic("nn: VGGNano needs at least one stage")
	}
	var layers []Layer
	prev := cfg.InChannels
	size := cfg.ImageSize
	for si, ch := range cfg.StageChannels {
		name := fmt.Sprintf("stage%d", si+1)
		layers = append(layers,
			NewConv2D(name+".conv", prev, ch, 3, 1, 1, rng),
			NewBatchNorm2D(name+".bn", ch),
			NewReLU(),
			NewMaxPool2D(),
		)
		prev = ch
		size /= 2
	}
	flat := prev * size * size
	layers = append(layers,
		NewFlatten(),
		NewLinear("fc", flat, cfg.HiddenFC, rng),
		NewBatchNorm1D("fcbn", cfg.HiddenFC),
		NewReLU(),
		NewLinear("head", cfg.HiddenFC, cfg.Classes, rng),
	)
	return &Model{Net: NewSequential(layers...), Loss: NewSoftmaxCrossEntropy()}
}

// NewMicroResNet builds a residual CNN per the config.
func NewMicroResNet(cfg MicroResNetConfig) *Model {
	rng := tensor.NewRNG(cfg.Seed)
	if len(cfg.StageChannels) == 0 {
		panic("nn: MicroResNet needs at least one stage")
	}
	var layers []Layer
	c0 := cfg.StageChannels[0]
	layers = append(layers,
		NewConv2D("stem", cfg.InChannels, c0, 3, 1, 1, rng),
		NewBatchNorm2D("stembn", c0),
		NewReLU(),
	)
	prev := c0
	for si, ch := range cfg.StageChannels {
		for bi := 0; bi < cfg.BlocksPerStage; bi++ {
			stride := 1
			if si > 0 && bi == 0 {
				stride = 2
			}
			name := fmt.Sprintf("stage%d.block%d", si+1, bi+1)
			layers = append(layers, NewResidualBlock(name, prev, ch, stride, rng))
			prev = ch
		}
	}
	layers = append(layers,
		NewGlobalAvgPool(),
		NewLinear("head", prev, cfg.Classes, rng),
	)
	return &Model{Net: NewSequential(layers...), Loss: NewSoftmaxCrossEntropy()}
}
