package nn

// Walk visits l and, for container layers, every nested layer in a stable
// depth-first order. It lets two structurally identical models be zipped
// layer-by-layer (used to transfer batch-norm running statistics from the
// designated worker to the global model, mirroring §5.2's "one worker
// responsible for updating batch normalization parameters").
func Walk(l Layer, fn func(Layer)) {
	switch t := l.(type) {
	case *Sequential:
		for _, c := range t.Layers {
			Walk(c, fn)
		}
	case *ResidualBlock:
		fn(t)
		Walk(t.conv1, fn)
		Walk(t.bn1, fn)
		Walk(t.conv2, fn)
		Walk(t.bn2, fn)
		if t.projConv != nil {
			Walk(t.projConv, fn)
			Walk(t.projBN, fn)
		}
	default:
		fn(l)
	}
}

// CopyBatchNormStats copies running mean/variance statistics from src to
// dst, which must be structurally identical models. Learnable parameters
// are not touched (those flow through the parameter server).
func CopyBatchNormStats(dst, src *Model) {
	var dstLayers, srcLayers []Layer
	Walk(dst.Net, func(l Layer) { dstLayers = append(dstLayers, l) })
	Walk(src.Net, func(l Layer) { srcLayers = append(srcLayers, l) })
	if len(dstLayers) != len(srcLayers) {
		panic("nn: CopyBatchNormStats architecture mismatch")
	}
	for i := range dstLayers {
		switch d := dstLayers[i].(type) {
		case *BatchNorm1D:
			s, ok := srcLayers[i].(*BatchNorm1D)
			if !ok {
				panic("nn: CopyBatchNormStats layer type mismatch")
			}
			copy(d.runningMean, s.runningMean)
			copy(d.runningVar, s.runningVar)
		case *BatchNorm2D:
			s, ok := srcLayers[i].(*BatchNorm2D)
			if !ok {
				panic("nn: CopyBatchNormStats layer type mismatch")
			}
			copy(d.runningMean, s.runningMean)
			copy(d.runningVar, s.runningVar)
		}
	}
}
