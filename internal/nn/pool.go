package nn

import (
	"fmt"

	"threelc/internal/tensor"
)

// MaxPool2D is a 2x2, stride-2 max pooling layer over NCHW tensors — the
// downsampling VGG-style architectures use (ResNet-style nets downsample
// with strided convolutions instead).
type MaxPool2D struct {
	argmax []int
	shape  []int
}

// NewMaxPool2D creates the pooling layer.
func NewMaxPool2D() *MaxPool2D { return &MaxPool2D{} }

// Forward pools each non-overlapping 2x2 window to its maximum.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D wants NCHW, got %v", shape))
	}
	n, c, h, w := shape[0], shape[1], shape[2], shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D wants even spatial dims, got %dx%d", h, w))
	}
	oh, ow := h/2, w/2
	p.shape = append(p.shape[:0], shape...)
	y := tensor.New(n, c, oh, ow)
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]
	xd, yd := x.Data(), y.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			inBase := (b*c + ch) * h * w
			outBase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i00 := inBase + (2*oy)*w + 2*ox
					best, bi := xd[i00], i00
					if v := xd[i00+1]; v > best {
						best, bi = v, i00+1
					}
					if v := xd[i00+w]; v > best {
						best, bi = v, i00+w
					}
					if v := xd[i00+w+1]; v > best {
						best, bi = v, i00+w+1
					}
					oi := outBase + oy*ow + ox
					yd[oi] = best
					p.argmax[oi] = bi
				}
			}
		}
	}
	return y
}

// Backward routes each pooled gradient to the argmax input position.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.shape...)
	dd, dxd := dout.Data(), dx.Data()
	for oi, g := range dd {
		dxd[p.argmax[oi]] += g
	}
	return dx
}

// Params returns nil (pooling has no parameters).
func (p *MaxPool2D) Params() []*Param { return nil }
