package nn

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

// SoftmaxCrossEntropy is the standard classification loss head. Forward
// computes mean cross-entropy over the batch; Backward returns
// d(loss)/d(logits) = (softmax - onehot)/N.
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor
	labels []int
}

// NewSoftmaxCrossEntropy creates the loss head.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward computes the mean cross-entropy of logits ([N, C]) against
// integer labels.
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	shape := logits.Shape()
	if len(shape) != 2 {
		panic(fmt.Sprintf("nn: loss wants [N, C] logits, got %v", shape))
	}
	n, c := shape[0], shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	l.probs = tensor.New(n, c)
	l.labels = labels
	ld, pd := logits.Data(), l.probs.Data()

	var total float64
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			pd[i*c+j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for j := 0; j < c; j++ {
			pd[i*c+j] = float32(float64(pd[i*c+j]) * inv)
		}
		p := float64(pd[i*c+labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return total / float64(n)
}

// Backward returns the gradient of the mean loss w.r.t. the logits.
func (l *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	shape := l.probs.Shape()
	n, c := shape[0], shape[1]
	d := tensor.New(n, c)
	pd, dd := l.probs.Data(), d.Data()
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			g := pd[i*c+j]
			if j == l.labels[i] {
				g -= 1
			}
			dd[i*c+j] = g * inv
		}
	}
	return d
}
