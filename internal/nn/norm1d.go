package nn

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

// BatchNorm1D normalizes each feature of an [N, D] tensor over the batch,
// with learnable per-feature scale and offset. Like BatchNorm2D, its
// parameters are NoCompress (§5.1 exempts batch-norm tensors).
type BatchNorm1D struct {
	Gamma *Param
	Beta  *Param

	d        int
	momentum float64
	eps      float64

	runningMean []float64
	runningVar  []float64

	xhat   []float32
	invStd []float64
	n      int
}

// NewBatchNorm1D creates a batch-norm layer over d features.
func NewBatchNorm1D(name string, d int) *BatchNorm1D {
	bn := &BatchNorm1D{
		Gamma:       newParam(name+".gamma", d),
		Beta:        newParam(name+".beta", d),
		d:           d,
		momentum:    0.9,
		eps:         1e-5,
		runningMean: make([]float64, d),
		runningVar:  make([]float64, d),
	}
	bn.Gamma.W.Fill(1)
	bn.Gamma.NoCompress = true
	bn.Beta.NoCompress = true
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// Forward normalizes x ([N, D]).
func (bn *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 2 || shape[1] != bn.d {
		panic(fmt.Sprintf("nn: BatchNorm1D(%d) got input shape %v", bn.d, shape))
	}
	n := shape[0]
	bn.n = n
	y := tensor.New(shape...)
	xd, yd := x.Data(), y.Data()
	gd, bd := bn.Gamma.W.Data(), bn.Beta.W.Data()

	if cap(bn.xhat) < len(xd) {
		bn.xhat = make([]float32, len(xd))
	}
	bn.xhat = bn.xhat[:len(xd)]
	if cap(bn.invStd) < bn.d {
		bn.invStd = make([]float64, bn.d)
	}
	bn.invStd = bn.invStd[:bn.d]

	for j := 0; j < bn.d; j++ {
		var mean, variance float64
		if train {
			var sum, sq float64
			for i := 0; i < n; i++ {
				v := float64(xd[i*bn.d+j])
				sum += v
				sq += v * v
			}
			mean = sum / float64(n)
			variance = sq/float64(n) - mean*mean
			if variance < 0 {
				variance = 0
			}
			bn.runningMean[j] = bn.momentum*bn.runningMean[j] + (1-bn.momentum)*mean
			bn.runningVar[j] = bn.momentum*bn.runningVar[j] + (1-bn.momentum)*variance
		} else {
			mean = bn.runningMean[j]
			variance = bn.runningVar[j]
		}
		invStd := 1 / math.Sqrt(variance+bn.eps)
		bn.invStd[j] = invStd
		g, beta := gd[j], bd[j]
		for i := 0; i < n; i++ {
			xh := float32((float64(xd[i*bn.d+j]) - mean) * invStd)
			bn.xhat[i*bn.d+j] = xh
			yd[i*bn.d+j] = g*xh + beta
		}
	}
	return y
}

// Backward computes dgamma, dbeta, and dx.
func (bn *BatchNorm1D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := bn.n
	dx := tensor.New(n, bn.d)
	dd, dxd := dout.Data(), dx.Data()
	gd := bn.Gamma.W.Data()
	ggd, gbd := bn.Gamma.G.Data(), bn.Beta.G.Data()
	count := float64(n)

	for j := 0; j < bn.d; j++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			dy := float64(dd[i*bn.d+j])
			sumDy += dy
			sumDyXhat += dy * float64(bn.xhat[i*bn.d+j])
		}
		ggd[j] += float32(sumDyXhat)
		gbd[j] += float32(sumDy)
		scale := float64(gd[j]) * bn.invStd[j]
		for i := 0; i < n; i++ {
			dy := float64(dd[i*bn.d+j])
			xh := float64(bn.xhat[i*bn.d+j])
			dxd[i*bn.d+j] = float32(scale * (dy - sumDy/count - xh*sumDyXhat/count))
		}
	}
	return dx
}

// Params returns gamma and beta (both NoCompress).
func (bn *BatchNorm1D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// RunningStats exposes the running mean and variance slices (aliased, not
// copied) for checkpointing and cross-model synchronization.
func (bn *BatchNorm1D) RunningStats() (mean, variance []float64) {
	return bn.runningMean, bn.runningVar
}
