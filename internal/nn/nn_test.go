package nn

import (
	"math"
	"testing"

	"threelc/internal/tensor"
)

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	l := NewSoftmaxCrossEntropy()
	logits := tensor.New(2, 4) // all zeros -> uniform distribution
	loss := l.Forward(logits, []int{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Errorf("uniform loss = %v, want ln(4) = %v", loss, want)
	}
}

func TestSoftmaxCrossEntropyConfident(t *testing.T) {
	l := NewSoftmaxCrossEntropy()
	logits := tensor.FromSlice([]float32{100, 0, 0}, 1, 3)
	loss := l.Forward(logits, []int{0})
	if loss > 1e-6 {
		t.Errorf("confident correct prediction should have ~0 loss, got %v", loss)
	}
}

func TestSoftmaxBackwardSumsToZero(t *testing.T) {
	// d(loss)/d(logits) rows sum to zero (softmax minus one-hot).
	l := NewSoftmaxCrossEntropy()
	rng := tensor.NewRNG(1)
	logits := tensor.New(4, 6)
	tensor.FillNormal(logits, 2, rng)
	l.Forward(logits, []int{0, 1, 2, 3})
	g := l.Backward()
	for r := 0; r < 4; r++ {
		var s float64
		for c := 0; c < 6; c++ {
			s += float64(g.At(r, c))
		}
		if math.Abs(s) > 1e-5 {
			t.Errorf("row %d gradient sums to %v", r, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	l := NewSoftmaxCrossEntropy()
	logits := tensor.FromSlice([]float32{1e4, -1e4}, 1, 2)
	loss := l.Forward(logits, []int{1})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Errorf("loss must be finite, got %v", loss)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	y := r.Forward(x, true)
	if y.Data()[0] != 0 || y.Data()[1] != 0 || y.Data()[2] != 2 {
		t.Errorf("ReLU forward: %v", y)
	}
	dx := r.Backward(tensor.FromSlice([]float32{5, 5, 5}, 3))
	if dx.Data()[0] != 0 || dx.Data()[1] != 0 || dx.Data()[2] != 5 {
		t.Errorf("ReLU backward: %v", dx)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool()
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := g.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Errorf("pool forward: %v", y)
	}
	dx := g.Backward(tensor.FromSlice([]float32{4, 8}, 1, 2))
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Errorf("pool backward: %v", dx)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4)
	y := f.Forward(x, true)
	if len(y.Shape()) != 2 || y.Shape()[1] != 12 {
		t.Errorf("flatten shape: %v", y.Shape())
	}
	dx := f.Backward(tensor.New(2, 12))
	if len(dx.Shape()) != 3 {
		t.Errorf("unflatten shape: %v", dx.Shape())
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	bn := NewBatchNorm1D("bn", 3)
	rng := tensor.NewRNG(2)
	x := tensor.New(64, 3)
	tensor.FillNormal(x, 4, rng)
	y := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		var sum, sq float64
		for i := 0; i < 64; i++ {
			v := float64(y.At(i, j))
			sum += v
			sq += v * v
		}
		mean := sum / 64
		variance := sq/64 - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Errorf("feature %d mean %v, want ~0", j, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("feature %d var %v, want ~1", j, variance)
		}
	}
}

func TestBatchNormParamsAreNoCompress(t *testing.T) {
	bn1 := NewBatchNorm1D("a", 4)
	bn2 := NewBatchNorm2D("b", 4)
	for _, p := range append(bn1.Params(), bn2.Params()...) {
		if !p.NoCompress {
			t.Errorf("%s must be NoCompress (paper §5.1)", p.Name)
		}
	}
}

func TestModelPredictAndAccuracy(t *testing.T) {
	m := NewMLP(4, []int{6}, 3, 1)
	rng := tensor.NewRNG(3)
	x := tensor.New(5, 4)
	tensor.FillNormal(x, 1, rng)
	pred := m.Predict(x)
	if len(pred) != 5 {
		t.Fatalf("Predict returned %d", len(pred))
	}
	for _, p := range pred {
		if p < 0 || p >= 3 {
			t.Fatalf("class %d out of range", p)
		}
	}
	acc := m.Accuracy(x, pred)
	if acc != 1 {
		t.Errorf("accuracy against own predictions = %v", acc)
	}
}

func TestModelParamNamesUnique(t *testing.T) {
	cfg := DefaultMicroResNet()
	cfg.BlocksPerStage = 2
	m := NewMicroResNet(cfg)
	seen := make(map[string]bool)
	for _, p := range m.Params() {
		if seen[p.Name] {
			t.Errorf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if m.NumParams() == 0 {
		t.Fatal("model has no parameters")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	a := NewMLP(4, []int{3}, 2, 1)
	b := NewMLP(4, []int{3}, 2, 99)
	b.CopyParamsFrom(a)
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		if !ap[i].W.Equal(bp[i].W) {
			t.Errorf("param %s not copied", ap[i].Name)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// One model, one batch, repeated steps: loss must drop monotonically
	// in trend (simple SGD on the param tensors directly).
	m := NewMLP(6, []int{8}, 3, 4)
	rng := tensor.NewRNG(5)
	x := tensor.New(9, 6)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	first := m.TrainStep(x, labels)
	var last float64
	for i := 0; i < 60; i++ {
		last = m.TrainStep(x, labels)
		for _, p := range m.Params() {
			p.W.AXPY(-0.1, p.G)
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v last %v", first, last)
	}
}

func TestMicroResNetForwardShapes(t *testing.T) {
	cfg := DefaultMicroResNet()
	m := NewMicroResNet(cfg)
	x := tensor.New(2, 3, 16, 16)
	logits := m.Net.Forward(x, true)
	shape := logits.Shape()
	if len(shape) != 2 || shape[0] != 2 || shape[1] != 10 {
		t.Fatalf("logits shape %v", shape)
	}
}

func TestMicroResNetTrains(t *testing.T) {
	cfg := DefaultMicroResNet()
	cfg.StageChannels = []int{4, 8}
	cfg.ImageSize = 8
	m := NewMicroResNet(cfg)
	rng := tensor.NewRNG(6)
	x := tensor.New(4, 3, 8, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 3}
	first := m.TrainStep(x, labels)
	var last float64
	for i := 0; i < 30; i++ {
		last = m.TrainStep(x, labels)
		for _, p := range m.Params() {
			p.W.AXPY(-0.05, p.G)
		}
	}
	if last >= first {
		t.Errorf("ResNet loss did not decrease: %v -> %v", first, last)
	}
}

func TestWalkVisitsAllParams(t *testing.T) {
	cfg := DefaultMicroResNet()
	m := NewMicroResNet(cfg)
	var n int
	Walk(m.Net, func(l Layer) {
		n += len(l.Params())
	})
	// ResidualBlock.Params() double-counts nested layers when visited
	// both directly and via Walk; count distinct names instead.
	names := make(map[string]bool)
	Walk(m.Net, func(l Layer) {
		for _, p := range l.Params() {
			names[p.Name] = true
		}
	})
	want := make(map[string]bool)
	for _, p := range m.Params() {
		want[p.Name] = true
	}
	for name := range want {
		if !names[name] {
			t.Errorf("Walk missed parameter %q", name)
		}
	}
}

func TestCopyBatchNormStats(t *testing.T) {
	a := NewMLP(4, []int{3}, 2, 1)
	b := NewMLP(4, []int{3}, 2, 1)
	// Train a's BN stats.
	rng := tensor.NewRNG(7)
	x := tensor.New(16, 4)
	tensor.FillNormal(x, 3, rng)
	a.Net.Forward(x, true)
	CopyBatchNormStats(b, a)
	// Eval-mode outputs must now agree.
	ya := a.Net.Forward(x, false)
	yb := b.Net.Forward(x, false)
	if !ya.AlmostEqual(yb, 1e-6) {
		t.Error("eval outputs differ after CopyBatchNormStats")
	}
}

func TestSequentialBackwardOrder(t *testing.T) {
	// Composing linear layers: gradient flows through all of them.
	rng := tensor.NewRNG(8)
	m := &Model{
		Net: NewSequential(
			NewLinear("a", 4, 4, rng),
			NewLinear("b", 4, 4, rng),
			NewLinear("c", 4, 2, rng),
		),
		Loss: NewSoftmaxCrossEntropy(),
	}
	x := tensor.New(2, 4)
	tensor.FillNormal(x, 1, rng)
	m.TrainStep(x, []int{0, 1})
	for _, p := range m.Params() {
		if p.G.MaxAbs() == 0 && p.W.Len() > 2 {
			t.Errorf("parameter %s received no gradient", p.Name)
		}
	}
}
