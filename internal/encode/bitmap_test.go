package encode

import (
	"testing"
	"testing/quick"
)

func TestBitmapSetGet(t *testing.T) {
	m := NewBitmap(20)
	m.Set(0)
	m.Set(7)
	m.Set(8)
	m.Set(19)
	for i := 0; i < 20; i++ {
		want := i == 0 || i == 7 || i == 8 || i == 19
		if m.Get(i) != want {
			t.Errorf("Get(%d) = %v, want %v", i, m.Get(i), want)
		}
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d", m.Count())
	}
}

func TestBitmapSizeBytes(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9}}
	for _, c := range cases {
		if got := BitmapSizeBytes(c.n); got != c.want {
			t.Errorf("BitmapSizeBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBitmapFromBytesValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong byte count")
		}
	}()
	BitmapFromBytes(make([]byte, 2), 20)
}

func TestBitmapRoundTripThroughBytes(t *testing.T) {
	m := NewBitmap(13)
	m.Set(3)
	m.Set(12)
	m2 := BitmapFromBytes(m.Bytes(), 13)
	if !m2.Get(3) || !m2.Get(12) || m2.Get(0) {
		t.Error("bitmap bytes round trip failed")
	}
}

// Property: Count equals the number of distinct Set indices.
func TestBitmapCountProperty(t *testing.T) {
	f := func(idx []uint8) bool {
		m := NewBitmap(256)
		distinct := make(map[int]bool)
		for _, i := range idx {
			m.Set(int(i))
			distinct[int(i)] = true
		}
		return m.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
