// Package encode implements the lossless transformations of the 3LC paper:
// quartic encoding (§3.2), which packs five ternary digits into one byte,
// and zero-run encoding (§3.3), a run-length encoder specialized to
// quartic-encoded data. It also provides the bitmap wire format used by the
// sparsification baselines (§5.1).
//
// Every transformation has an allocation-free form that operates on
// caller-provided buffers — QuarticEncodeInto, QuarticDecodeInto,
// QuarticDecodeScaledInto, ZeroRunEncodeAppend, ZeroRunDecodeInto — so a
// steady-state compression pipeline can recycle its buffers across training
// steps and keep the per-step allocation count at zero. Quartic encode and
// decode are also available in chunked parallel form (QuarticEncodeParallel,
// QuarticDecodeParallel, QuarticDecodeScaledParallel, built on Chunked),
// which shards large tensors across goroutines at group-aligned boundaries
// and produces byte-identical output to the serial functions.
//
// Like package quant, these staged transforms are the reference
// implementation: the production ternary hot path runs internal/kernel's
// fused forms (quantize+pack+zero-run in one compress loop, LUT-driven
// expand+unpack+scale in one decode loop), which are differential-tested
// and fuzzed against the functions here for byte-identical wires.
package encode

import "fmt"

// Quartic-encoding constants.
const (
	// GroupSize is the number of ternary values folded into one byte.
	GroupSize = 5
	// MaxQuartic is the largest byte value quartic encoding produces:
	// 2*81 + 2*27 + 2*9 + 2*3 + 2 = 242. Values 243-255 are reserved for
	// zero-run encoding.
	MaxQuartic = 242
	// ZeroGroupByte is the quartic encoding of five zeros
	// (1*81 + 1*27 + 1*9 + 1*3 + 1): the byte zero-run encoding targets.
	ZeroGroupByte = 121
)

// QuarticEncode packs a ternary tensor q (values in {-1,0,1}) into bytes,
// five values per byte (1.6 bits per value). The input length need not be a
// multiple of five; the final group is implicitly zero-padded, matching the
// padding step of §3.2. The original length must be carried out-of-band
// (the wire format in package compress records it).
func QuarticEncode(q []int8) []byte {
	out := make([]byte, (len(q)+GroupSize-1)/GroupSize)
	QuarticEncodeInto(q, out)
	return out
}

// QuarticEncodeInto packs q into dst, which must have length
// ceil(len(q)/5). It returns the number of bytes written.
//
//3lc:noalloc
func QuarticEncodeInto(q []int8, dst []byte) int {
	n := (len(q) + GroupSize - 1) / GroupSize
	if len(dst) < n {
		panic(fmt.Sprintf("encode: quartic dst too small: %d < %d", len(dst), n))
	}
	// Full groups: unrolled hot loop, no bounds surprises.
	full := len(q) / GroupSize
	for g := 0; g < full; g++ {
		i := g * GroupSize
		a := uint16(q[i] + 1)
		b := uint16(q[i+1] + 1)
		c := uint16(q[i+2] + 1)
		d := uint16(q[i+3] + 1)
		e := uint16(q[i+4] + 1)
		dst[g] = byte(a*81 + b*27 + c*9 + d*3 + e)
	}
	// Trailing partial group, zero-padded (digit value 1 = ternary zero).
	if full < n {
		var digits [GroupSize]uint16
		for k := range digits {
			digits[k] = 1 // ternary 0 after the +1 shift
		}
		for k, i := 0, full*GroupSize; i < len(q); k, i = k+1, i+1 {
			digits[k] = uint16(q[i] + 1)
		}
		dst[full] = byte(digits[0]*81 + digits[1]*27 + digits[2]*9 + digits[3]*3 + digits[4])
	}
	return n
}

// QuarticDecode unpacks quartic-encoded bytes into n ternary values.
// It panics if the encoded data is too short for n values or contains a
// byte above MaxQuartic (which indicates un-decoded zero-run bytes).
func QuarticDecode(enc []byte, n int) []int8 {
	out := make([]int8, n)
	QuarticDecodeInto(enc, out)
	return out
}

// QuarticDecodeInto unpacks enc into dst (len(dst) ternary values).
//
//3lc:noalloc
func QuarticDecodeInto(enc []byte, dst []int8) {
	n := len(dst)
	need := (n + GroupSize - 1) / GroupSize
	if len(enc) < need {
		panic(fmt.Sprintf("encode: quartic input too short: %d bytes for %d values", len(enc), n))
	}
	full := n / GroupSize
	for g := 0; g < full; g++ {
		v := enc[g]
		if v > MaxQuartic {
			panic(fmt.Sprintf("encode: byte %d > 242 in quartic data (zero-run not decoded?)", v))
		}
		i := g * GroupSize
		dst[i+4] = int8(v%3) - 1
		v /= 3
		dst[i+3] = int8(v%3) - 1
		v /= 3
		dst[i+2] = int8(v%3) - 1
		v /= 3
		dst[i+1] = int8(v%3) - 1
		v /= 3
		dst[i] = int8(v) - 1
	}
	if full < need {
		v := enc[full]
		if v > MaxQuartic {
			panic(fmt.Sprintf("encode: byte %d > 242 in quartic data", v))
		}
		var digits [GroupSize]int8
		digits[4] = int8(v % 3)
		v /= 3
		digits[3] = int8(v % 3)
		v /= 3
		digits[2] = int8(v % 3)
		v /= 3
		digits[1] = int8(v % 3)
		v /= 3
		digits[0] = int8(v)
		for k, i := 0, full*GroupSize; i < n; k, i = k+1, i+1 {
			dst[i] = digits[k] - 1
		}
	}
}

// QuarticDecodeScaledInto unpacks enc directly into float32 values,
// multiplying each ternary digit by scale: dst[i] = scale * q[i]. This is
// the fused form of QuarticDecodeInto + dequantization that the compress
// package's ternary decoder runs on untrusted wire data, so instead of
// panicking it returns an error when enc is too short or contains a byte
// above MaxQuartic (un-decoded zero-run data), validating in the same pass
// that decodes.
func QuarticDecodeScaledInto(enc []byte, dst []float32, scale float32) error {
	n := len(dst)
	need := (n + GroupSize - 1) / GroupSize
	if len(enc) < need {
		return fmt.Errorf("encode: quartic input too short: %d bytes for %d values", len(enc), n)
	}
	full := n / GroupSize
	for g := 0; g < full; g++ {
		v := enc[g]
		if v > MaxQuartic {
			return fmt.Errorf("encode: invalid quartic byte %d at offset %d", v, g)
		}
		i := g * GroupSize
		dst[i+4] = scale * float32(int8(v%3)-1)
		v /= 3
		dst[i+3] = scale * float32(int8(v%3)-1)
		v /= 3
		dst[i+2] = scale * float32(int8(v%3)-1)
		v /= 3
		dst[i+1] = scale * float32(int8(v%3)-1)
		v /= 3
		dst[i] = scale * float32(int8(v)-1)
	}
	if full < need {
		v := enc[full]
		if v > MaxQuartic {
			return fmt.Errorf("encode: invalid quartic byte %d at offset %d", v, full)
		}
		var digits [GroupSize]int8
		digits[4] = int8(v % 3)
		v /= 3
		digits[3] = int8(v % 3)
		v /= 3
		digits[2] = int8(v % 3)
		v /= 3
		digits[1] = int8(v % 3)
		v /= 3
		digits[0] = int8(v)
		for k, i := 0, full*GroupSize; i < n; k, i = k+1, i+1 {
			dst[i] = scale * float32(digits[k]-1)
		}
	}
	return nil
}

// QuarticEncodedLen returns the number of bytes quartic encoding produces
// for n ternary values.
func QuarticEncodedLen(n int) int {
	return (n + GroupSize - 1) / GroupSize
}
