package encode

import (
	"bytes"
	"testing"
	"testing/quick"

	"threelc/internal/tensor"
)

func ternary(rng *tensor.RNG, n int) []int8 {
	q := make([]int8, n)
	for i := range q {
		q[i] = int8(rng.Intn(3)) - 1
	}
	return q
}

func TestQuarticZeroGroupByte(t *testing.T) {
	// Five zeros must encode to byte 121 (§3.3 relies on this).
	got := QuarticEncode([]int8{0, 0, 0, 0, 0})
	if len(got) != 1 || got[0] != ZeroGroupByte {
		t.Fatalf("five zeros encode to %v, want [121]", got)
	}
}

func TestQuarticExtremeGroups(t *testing.T) {
	if b := QuarticEncode([]int8{-1, -1, -1, -1, -1}); b[0] != 0 {
		t.Errorf("all -1 encodes to %d, want 0", b[0])
	}
	if b := QuarticEncode([]int8{1, 1, 1, 1, 1}); b[0] != MaxQuartic {
		t.Errorf("all +1 encodes to %d, want 242", b[0])
	}
}

func TestQuarticKnownValue(t *testing.T) {
	// Figure 3: the group (-1,0,0,1,0) -> digits (0,1,1,2,1)
	// = 0*81 + 1*27 + 1*9 + 2*3 + 1 = 43.
	b := QuarticEncode([]int8{-1, 0, 0, 1, 0})
	if b[0] != 43 {
		t.Errorf("encoded %d, want 43", b[0])
	}
}

func TestQuarticOutputRange(t *testing.T) {
	rng := tensor.NewRNG(1)
	q := ternary(rng, 100000)
	enc := QuarticEncode(q)
	for i, b := range enc {
		if b > MaxQuartic {
			t.Fatalf("byte %d at %d exceeds 242", b, i)
		}
	}
}

func TestQuarticEncodedLen(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {4, 1}, {5, 1}, {6, 2}, {10, 2}, {11, 3},
	}
	for _, c := range cases {
		if got := QuarticEncodedLen(c.n); got != c.want {
			t.Errorf("QuarticEncodedLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestQuarticRoundTripAllLengths(t *testing.T) {
	rng := tensor.NewRNG(2)
	for n := 0; n <= 32; n++ {
		q := ternary(rng, n)
		dec := QuarticDecode(QuarticEncode(q), n)
		if len(dec) != n {
			t.Fatalf("n=%d: decode length %d", n, len(dec))
		}
		for i := range q {
			if dec[i] != q[i] {
				t.Fatalf("n=%d: mismatch at %d: %d != %d", n, i, dec[i], q[i])
			}
		}
	}
}

// Property: encode/decode is the identity for any ternary input.
func TestQuarticRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw) % 2000
		q := ternary(tensor.NewRNG(seed), n)
		dec := QuarticDecode(QuarticEncode(q), n)
		for i := range q {
			if dec[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuarticDecodeRejectsRunBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on byte > 242")
		}
	}()
	QuarticDecode([]byte{243}, 5)
}

func TestQuarticDecodeShortInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncated input")
		}
	}()
	QuarticDecode([]byte{121}, 6)
}

func TestQuarticEncodeIntoSmallDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on small dst")
		}
	}()
	QuarticEncodeInto(make([]int8, 10), make([]byte, 1))
}

func TestQuarticCompressionFactor(t *testing.T) {
	// 1.6 bits per value = exactly 1 byte per 5 values.
	q := make([]int8, 1000)
	enc := QuarticEncode(q)
	if len(enc) != 200 {
		t.Errorf("1000 values -> %d bytes, want 200", len(enc))
	}
	if !bytes.Equal(enc, bytes.Repeat([]byte{ZeroGroupByte}, 200)) {
		t.Error("all-zero input should be all 121 bytes")
	}
}

func TestQuarticPaddingIsTernaryZero(t *testing.T) {
	// A lone +1 pads with zeros: digits (2,1,1,1,1) = 2*81+27+9+3+1 = 202.
	b := QuarticEncode([]int8{1})
	if b[0] != 202 {
		t.Errorf("padded group encodes to %d, want 202", b[0])
	}
}
