package encode

import (
	"sync/atomic"
	"testing"
)

// TestChunkedSpawnCounts pins Chunked's caller-runs-last pool shape: k
// spans spawn exactly k-1 goroutines, and a single-span fan-out (small n,
// one worker, or fewer align-groups than workers) spawns none.
func TestChunkedSpawnCounts(t *testing.T) {
	cases := []struct {
		name              string
		n, align, workers int
		wantGoro          int
	}{
		{"serial", 100, 1, 1, 0},
		{"four spans", 100, 5, 4, 3},
		{"smaller than one group", 3, 5, 8, 0},
		{"fewer groups than workers", 10, 5, 8, 1},
		{"empty", 0, 5, 8, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var spawns, calls atomic.Int64
			SpawnHook = func() { spawns.Add(1) }
			defer func() { SpawnHook = nil }()
			Chunked(tc.n, tc.align, tc.workers, func(lo, hi int) {
				calls.Add(1)
				if lo < 0 || hi > tc.n || lo >= hi {
					t.Errorf("bad span [%d,%d) for n=%d", lo, hi, tc.n)
				}
			})
			if int(spawns.Load()) != tc.wantGoro {
				t.Errorf("spawned %d goroutines, want %d", spawns.Load(), tc.wantGoro)
			}
			if tc.n > 0 && calls.Load() == 0 {
				t.Error("fn never ran")
			}
		})
	}
}
