package encode

import (
	"fmt"
	"runtime"
	"sync"
)

// Quartic encode dominates 3LC compression CPU time (§5.1 of the paper),
// and — unlike zero-run encoding, whose runs cross arbitrary byte
// boundaries — it is embarrassingly parallel: each 5-value group maps to
// exactly one output byte. Chunked and the *Parallel functions below shard
// a tensor into contiguous spans aligned to GroupSize and encode or decode
// the spans concurrently, producing output byte-identical to the serial
// functions regardless of worker count.

// SpawnHook, when non-nil, is called once per goroutine Chunked spawns.
// It is the scheduling test double behind the "small tensors spawn zero
// goroutines, a k-span fan-out spawns k-1" guarantee (the caller always
// runs the last span itself instead of idling in Wait). Production code
// must leave it nil.
var SpawnHook func()

// Chunked partitions [0, n) into up to `workers` contiguous spans whose
// boundaries (except the final one) are multiples of align, and runs
// fn(lo, hi) for each span, returning once all spans complete. workers
// <= 0 means GOMAXPROCS. When only one span results (small n or workers
// == 1), fn runs on the calling goroutine with zero spawns and no
// synchronization overhead; with k spans, k-1 goroutines are spawned and
// the caller runs the final span itself. fn must not panic: a panic on a
// worker goroutine crashes the program.
func Chunked(n, align, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if align < 1 {
		align = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	groups := (n + align - 1) / align
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	per := groups / workers
	rem := groups % workers
	var wg sync.WaitGroup
	lo := 0
	lastLo := 0
	for g := 0; g < workers; g++ {
		cnt := per
		if g < rem {
			cnt++
		}
		hi := lo + cnt*align
		if hi > n {
			hi = n
		}
		if g == workers-1 {
			lastLo = lo
			break
		}
		wg.Add(1)
		if SpawnHook != nil {
			SpawnHook()
		}
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	fn(lastLo, n)
	wg.Wait()
}

// QuarticEncodeParallel packs q into dst like QuarticEncodeInto, sharding
// the work across up to `workers` goroutines (<= 0: GOMAXPROCS). Output is
// byte-identical to the serial encoder. It returns the number of bytes
// written.
func QuarticEncodeParallel(q []int8, dst []byte, workers int) int {
	n := QuarticEncodedLen(len(q))
	if len(dst) < n {
		panic(fmt.Sprintf("encode: quartic dst too small: %d < %d", len(dst), n))
	}
	Chunked(len(q), GroupSize, workers, func(lo, hi int) {
		QuarticEncodeInto(q[lo:hi], dst[lo/GroupSize:(hi+GroupSize-1)/GroupSize])
	})
	return n
}

// QuarticDecodeParallel unpacks enc into dst like QuarticDecodeInto,
// sharding across up to `workers` goroutines. Like the serial decoder it
// panics on short input or bytes above MaxQuartic; use
// QuarticDecodeScaledParallel for untrusted data.
func QuarticDecodeParallel(enc []byte, dst []int8, workers int) {
	need := QuarticEncodedLen(len(dst))
	if len(enc) < need {
		panic(fmt.Sprintf("encode: quartic input too short: %d bytes for %d values", len(enc), len(dst)))
	}
	Chunked(len(dst), GroupSize, workers, func(lo, hi int) {
		QuarticDecodeInto(enc[lo/GroupSize:(hi+GroupSize-1)/GroupSize], dst[lo:hi])
	})
}

// QuarticDecodeScaledParallel is the chunked parallel form of
// QuarticDecodeScaledInto: it validates and decodes untrusted quartic data
// directly into scaled float32 values, returning the first error any chunk
// hits (dst contents are unspecified on error).
func QuarticDecodeScaledParallel(enc []byte, dst []float32, scale float32, workers int) error {
	need := QuarticEncodedLen(len(dst))
	if len(enc) < need {
		return fmt.Errorf("encode: quartic input too short: %d bytes for %d values", len(enc), len(dst))
	}
	var mu sync.Mutex
	var firstErr error
	Chunked(len(dst), GroupSize, workers, func(lo, hi int) {
		if err := QuarticDecodeScaledInto(enc[lo/GroupSize:(hi+GroupSize-1)/GroupSize], dst[lo:hi], scale); err != nil {
			mu.Lock()
			if firstErr == nil {
				// The chunk decoder numbers offsets from its own slice;
				// record the chunk base so the report points into the
				// full payload.
				firstErr = fmt.Errorf("chunk at byte %d: %w", lo/GroupSize, err)
			}
			mu.Unlock()
		}
	})
	return firstErr
}
