package encode

import (
	"bytes"
	"testing"
	"testing/quick"

	"threelc/internal/tensor"
)

func TestZeroRunBasic(t *testing.T) {
	// Figure 3: [113, 121, 121, 121, ...] -> runs of 121 collapse.
	in := []byte{113, 121, 121, 121}
	out := ZeroRunEncode(in)
	// 3 consecutive 121s -> 243 + (3-2) = 244.
	want := []byte{113, 244}
	if !bytes.Equal(out, want) {
		t.Fatalf("encoded %v, want %v", out, want)
	}
	if !bytes.Equal(ZeroRunDecode(out), in) {
		t.Fatalf("round trip failed: %v", ZeroRunDecode(out))
	}
}

func TestZeroRunLone121Unchanged(t *testing.T) {
	in := []byte{1, 121, 2}
	out := ZeroRunEncode(in)
	if !bytes.Equal(out, in) {
		t.Errorf("lone 121 must pass through: %v", out)
	}
}

func TestZeroRunRunLengths(t *testing.T) {
	for k := 2; k <= 14; k++ {
		in := bytes.Repeat([]byte{ZeroGroupByte}, k)
		out := ZeroRunEncode(in)
		if len(out) != 1 || out[0] != byte(RunBase+k-2) {
			t.Errorf("run of %d encoded to %v, want [%d]", k, out, RunBase+k-2)
		}
		if !bytes.Equal(ZeroRunDecode(out), in) {
			t.Errorf("run of %d failed round trip", k)
		}
	}
}

func TestZeroRunLongRunSplits(t *testing.T) {
	// 31 = 14 + 14 + 3.
	in := bytes.Repeat([]byte{ZeroGroupByte}, 31)
	out := ZeroRunEncode(in)
	want := []byte{255, 255, 244}
	if !bytes.Equal(out, want) {
		t.Fatalf("31-run encoded to %v, want %v", out, want)
	}
	if !bytes.Equal(ZeroRunDecode(out), in) {
		t.Fatal("31-run round trip failed")
	}
}

func TestZeroRun15Split(t *testing.T) {
	// 15 = 14 + lone 1 -> [255, 121].
	in := bytes.Repeat([]byte{ZeroGroupByte}, 15)
	out := ZeroRunEncode(in)
	want := []byte{255, ZeroGroupByte}
	if !bytes.Equal(out, want) {
		t.Fatalf("15-run encoded to %v, want %v", out, want)
	}
}

func TestZeroRunEmptyInput(t *testing.T) {
	if len(ZeroRunEncode(nil)) != 0 {
		t.Error("empty input should encode to empty output")
	}
	if len(ZeroRunDecode(nil)) != 0 {
		t.Error("empty input should decode to empty output")
	}
}

func TestZeroRunNoRunsPassThrough(t *testing.T) {
	in := []byte{0, 50, 100, 242, 120, 122}
	out := ZeroRunEncode(in)
	if !bytes.Equal(out, in) {
		t.Errorf("run-free input changed: %v", out)
	}
}

func TestZeroRunNeverExpands(t *testing.T) {
	rng := tensor.NewRNG(1)
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(500)
		in := make([]byte, n)
		for i := range in {
			// Bias toward 121 to create runs.
			if rng.Float64() < 0.5 {
				in[i] = ZeroGroupByte
			} else {
				in[i] = byte(rng.Intn(243))
			}
		}
		out := ZeroRunEncode(in)
		if len(out) > len(in) {
			t.Fatalf("output %d bytes > input %d bytes", len(out), len(in))
		}
	}
}

// Property: ZeroRunDecode(ZeroRunEncode(x)) == x for any quartic data.
func TestZeroRunRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		rng := tensor.NewRNG(seed)
		n := int(nRaw) % 3000
		in := make([]byte, n)
		for i := range in {
			if rng.Float64() < 0.6 {
				in[i] = ZeroGroupByte
			} else {
				in[i] = byte(rng.Intn(243))
			}
		}
		return bytes.Equal(ZeroRunDecode(ZeroRunEncode(in)), in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroRunDecodeInto(t *testing.T) {
	in := []byte{113, 121, 121, 121, 42}
	enc := ZeroRunEncode(in)
	dst := make([]byte, len(in))
	n := ZeroRunDecodeInto(enc, dst)
	if n != len(in) || !bytes.Equal(dst, in) {
		t.Fatalf("DecodeInto produced %v (%d bytes)", dst[:n], n)
	}
}

func TestZeroRunDecodeIntoOverflowPanics(t *testing.T) {
	enc := ZeroRunEncode(bytes.Repeat([]byte{ZeroGroupByte}, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	ZeroRunDecodeInto(enc, make([]byte, 5))
}

func TestZeroTensorEndToEndRatio(t *testing.T) {
	// §3.3: "In a hypothetical case of compressing a zero 32-bit
	// floating-point tensor, the combination of all techniques in 3LC
	// reaches a compression ratio of 280x."
	// n zero floats = 4n bytes raw. Quartic: n/5 bytes of 121. ZRE:
	// each 14-run -> 1 byte, so n/70 bytes. Ratio = 4n/(n/70) = 280.
	n := 70 * 1000
	q := make([]int8, n)
	zre := ZeroRunEncode(QuarticEncode(q))
	ratio := float64(4*n) / float64(len(zre))
	if ratio < 279.9 || ratio > 280.1 {
		t.Errorf("zero-tensor ratio = %.1f, want 280", ratio)
	}
}
