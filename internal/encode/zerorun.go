package encode

import "fmt"

// Zero-run encoding constants (§3.3). A run of k consecutive ZeroGroupByte
// values (2 <= k <= MaxRun) is replaced by the single byte RunBase+(k-2).
const (
	// RunBase is the first byte value reserved for zero runs (243).
	RunBase = MaxQuartic + 1
	// MaxRun is the longest run a single byte can represent:
	// 243..255 encode runs of 2..14.
	MaxRun = 2 + (255 - RunBase)
)

// ZeroRunEncode compresses quartic-encoded data by replacing consecutive
// runs of the zero-group byte (121) with single bytes in [243, 255].
// Runs longer than 14 are emitted as multiple run bytes. A lone 121 is
// copied through unchanged. All other byte values (0-242) are copied
// verbatim, so the transform is byte-aligned and needs no bit operations
// or lookup tables.
func ZeroRunEncode(in []byte) []byte {
	// Worst case: no runs, output length == input length.
	return ZeroRunEncodeAppend(make([]byte, 0, len(in)), in)
}

// ZeroRunEncodeAppend appends the zero-run encoding of in to dst and
// returns the extended slice. Steady-state callers that recycle dst across
// calls (dst[:0]) pay no allocation once its capacity has converged.
func ZeroRunEncodeAppend(dst, in []byte) []byte {
	i := 0
	for i < len(in) {
		b := in[i]
		if b != ZeroGroupByte {
			dst = append(dst, b)
			i++
			continue
		}
		// Count the run of 121s.
		j := i + 1
		for j < len(in) && in[j] == ZeroGroupByte {
			j++
		}
		run := j - i
		for run >= 2 {
			k := run
			if k > MaxRun {
				k = MaxRun
			}
			dst = append(dst, byte(RunBase+k-2))
			run -= k
		}
		if run == 1 {
			dst = append(dst, ZeroGroupByte)
		}
		i = j
	}
	return dst
}

// ZeroRunDecode expands zero-run-encoded data back to pure quartic bytes.
// It returns an error on truncated/corrupt framing only in the sense that
// no validation beyond byte ranges is possible; the decode itself cannot
// fail for any input, since every byte is either literal or a run marker.
func ZeroRunDecode(in []byte) []byte {
	// Estimate: each run byte expands to at most MaxRun bytes.
	out := make([]byte, 0, len(in)+len(in)/2)
	for _, b := range in {
		if b >= RunBase {
			k := int(b) - RunBase + 2
			for n := 0; n < k; n++ {
				out = append(out, ZeroGroupByte)
			}
		} else {
			out = append(out, b)
		}
	}
	return out
}

// ZeroRunDecodedLen returns the exact number of bytes ZeroRunDecode would
// produce, without allocating. Decoders use it to validate untrusted
// payloads before expansion.
func ZeroRunDecodedLen(in []byte) int {
	n := 0
	for _, b := range in {
		if b >= RunBase {
			n += int(b) - RunBase + 2
		} else {
			n++
		}
	}
	return n
}

// ZeroRunDecodeInto expands in into dst and returns the number of bytes
// produced. It panics if dst is too small, so callers must size dst from
// the known decoded length (ZeroRunDecodedLen, or the wire format).
//
//3lc:noalloc
func ZeroRunDecodeInto(in []byte, dst []byte) int {
	n := 0
	for _, b := range in {
		if b >= RunBase {
			k := int(b) - RunBase + 2
			if n+k > len(dst) {
				panic(fmt.Sprintf("encode: zero-run output overflows %d-byte buffer", len(dst)))
			}
			for j := 0; j < k; j++ {
				dst[n] = ZeroGroupByte
				n++
			}
		} else {
			if n >= len(dst) {
				panic(fmt.Sprintf("encode: zero-run output overflows %d-byte buffer", len(dst)))
			}
			dst[n] = b
			n++
		}
	}
	return n
}
