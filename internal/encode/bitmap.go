package encode

import "fmt"

// Bitmap is the selection mask wire format used by the sparsification
// baselines (§5.1): 1 bit per state change indicating whether that element
// was transmitted, followed by the selected values. This is the "1 bit per
// state change traffic overhead regardless of input size" the paper charges
// sparsification with.
type Bitmap struct {
	bits []byte
	n    int
}

// NewBitmap creates an all-clear bitmap over n elements.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{bits: make([]byte, (n+7)/8), n: n}
}

// BitmapFromBytes wraps an encoded bitmap of n logical bits.
func BitmapFromBytes(b []byte, n int) *Bitmap {
	if len(b) != (n+7)/8 {
		panic(fmt.Sprintf("encode: bitmap bytes %d != ceil(%d/8)", len(b), n))
	}
	return &Bitmap{bits: b, n: n}
}

// Len returns the number of logical bits.
func (m *Bitmap) Len() int { return m.n }

// Set marks bit i.
func (m *Bitmap) Set(i int) {
	m.bits[i>>3] |= 1 << (uint(i) & 7)
}

// Get reports whether bit i is set.
func (m *Bitmap) Get(i int) bool {
	return m.bits[i>>3]&(1<<(uint(i)&7)) != 0
}

// Count returns the number of set bits.
func (m *Bitmap) Count() int {
	c := 0
	for _, b := range m.bits {
		for b != 0 {
			b &= b - 1
			c++
		}
	}
	return c
}

// Bytes returns the packed representation (aliased, not copied).
func (m *Bitmap) Bytes() []byte { return m.bits }

// Reset clears every bit, retaining the backing storage so a selection
// mask can be rebuilt in place each training step without reallocating.
func (m *Bitmap) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// SizeBytes returns the wire size of a bitmap over n elements.
func BitmapSizeBytes(n int) int { return (n + 7) / 8 }
