package encode

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"threelc/internal/tensor"
)

func ternaryData(seed uint64, n int) []int8 {
	rng := tensor.NewRNG(seed)
	q := make([]int8, n)
	for i := range q {
		switch rng.Intn(4) {
		case 0:
			q[i] = 1
		case 1:
			q[i] = -1
		default:
			q[i] = 0 // ~50% zeros, like a sparsified gradient
		}
	}
	return q
}

// TestChunkedSpansCoverExactly checks Chunked's partitioning: spans must
// tile [0, n) without gaps or overlap, and all interior boundaries must be
// align-multiples.
func TestChunkedSpansCoverExactly(t *testing.T) {
	for _, n := range []int{1, 4, 5, 6, 99, 100, 1000, 1001} {
		for _, workers := range []int{1, 2, 3, 7, 64} {
			covered := make([]bool, n)
			var mu sync.Mutex
			dup := -1
			Chunked(n, 5, workers, func(lo, hi int) {
				if lo%5 != 0 {
					t.Errorf("n=%d w=%d: span start %d not aligned", n, workers, lo)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					if covered[i] {
						dup = i
					}
					covered[i] = true
				}
				mu.Unlock()
			})
			if dup >= 0 {
				t.Fatalf("n=%d w=%d: index %d covered twice", n, workers, dup)
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("n=%d w=%d: index %d not covered", n, workers, i)
				}
			}
		}
	}
}

// TestQuarticEncodeParallelByteIdentical is the determinism guarantee the
// wire format depends on: the parallel encoder must produce exactly the
// serial encoder's bytes for every worker count and length, including
// lengths with a trailing partial group.
func TestQuarticEncodeParallelByteIdentical(t *testing.T) {
	for _, n := range []int{1, 5, 6, 12345, 100000, 100003} {
		q := ternaryData(uint64(n), n)
		want := QuarticEncode(q)
		for _, workers := range []int{1, 2, 3, 8, 33} {
			got := make([]byte, QuarticEncodedLen(n))
			if w := QuarticEncodeParallel(q, got, workers); w != len(want) {
				t.Fatalf("n=%d w=%d: wrote %d bytes, want %d", n, workers, w, len(want))
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d w=%d: parallel encode differs from serial", n, workers)
			}
		}
	}
}

func TestQuarticDecodeParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 5, 12345, 100003} {
		q := ternaryData(uint64(n)+7, n)
		enc := QuarticEncode(q)
		for _, workers := range []int{1, 2, 8} {
			dst := make([]int8, n)
			QuarticDecodeParallel(enc, dst, workers)
			for i := range dst {
				if dst[i] != q[i] {
					t.Fatalf("n=%d w=%d: value %d decoded as %d, want %d", n, workers, i, dst[i], q[i])
				}
			}
		}
	}
}

func TestQuarticDecodeScaledIntoMatchesDecode(t *testing.T) {
	const n = 9999
	q := ternaryData(3, n)
	enc := QuarticEncode(q)
	const scale = 0.125
	dst := make([]float32, n)
	if err := QuarticDecodeScaledInto(enc, dst, scale); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != scale*float32(q[i]) {
			t.Fatalf("value %d: %v, want %v", i, dst[i], scale*float32(q[i]))
		}
	}
	// Parallel form agrees.
	dst2 := make([]float32, n)
	if err := QuarticDecodeScaledParallel(enc, dst2, scale, 4); err != nil {
		t.Fatal(err)
	}
	for i := range dst2 {
		if dst2[i] != dst[i] {
			t.Fatalf("parallel scaled decode differs at %d", i)
		}
	}
}

func TestQuarticDecodeScaledIntoErrors(t *testing.T) {
	if err := QuarticDecodeScaledInto([]byte{121}, make([]float32, 10), 1); err == nil {
		t.Error("short input must error")
	}
	if err := QuarticDecodeScaledInto([]byte{250, 121}, make([]float32, 10), 1); err == nil {
		t.Error("byte > MaxQuartic must error")
	}
	if err := QuarticDecodeScaledParallel([]byte{121, 250}, make([]float32, 10), 1, 2); err == nil {
		t.Error("parallel: byte > MaxQuartic must error")
	}
	if err := QuarticDecodeScaledParallel([]byte{121}, make([]float32, 10), 1, 2); err == nil {
		t.Error("parallel: short input must error")
	}
}

func TestZeroRunEncodeAppendReusesBuffer(t *testing.T) {
	q := ternaryData(5, 10000)
	enc := QuarticEncode(q)
	want := ZeroRunEncode(enc)
	buf := ZeroRunEncodeAppend(nil, enc)
	if !bytes.Equal(buf, want) {
		t.Fatal("append form differs from allocating form")
	}
	// Second call into the recycled buffer must not grow it and must give
	// the same bytes.
	buf2 := ZeroRunEncodeAppend(buf[:0], enc)
	if &buf2[0] != &buf[0] {
		t.Error("recycled buffer was reallocated despite sufficient capacity")
	}
	if !bytes.Equal(buf2, want) {
		t.Fatal("recycled encode differs")
	}
	// Appending after a prefix preserves the prefix.
	pre := append([]byte(nil), 0xAA, 0xBB)
	out := ZeroRunEncodeAppend(pre, enc)
	if out[0] != 0xAA || out[1] != 0xBB || !bytes.Equal(out[2:], want) {
		t.Fatal("prefix not preserved")
	}
}

func TestBitmapReset(t *testing.T) {
	m := NewBitmap(100)
	for i := 0; i < 100; i += 3 {
		m.Set(i)
	}
	m.Reset()
	if m.Count() != 0 {
		t.Errorf("Count after Reset = %d", m.Count())
	}
	if m.Len() != 100 {
		t.Errorf("Len changed by Reset: %d", m.Len())
	}
}

// TestQuarticEncodeParallelSpeedup asserts the >1.5x scaling claim for
// chunked parallel encode on a >= 1M-element tensor. A wall-clock
// assertion is only trustworthy with real headroom, so it requires at
// least 4 CPUs — on 1-2 vCPU runners (shared CI machines) the achievable
// speedup sits too close to the threshold and the test skips rather than
// flake (the byte-identical tests above run everywhere).
func TestQuarticEncodeParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("GOMAXPROCS=%d: not enough parallel headroom for a stable timing assertion", procs)
	}
	const n = 1 << 21 // 2M elements
	q := ternaryData(9, n)
	dst := make([]byte, QuarticEncodedLen(n))
	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			QuarticEncodeParallel(q, dst, workers)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	parallel := measure(procs)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel(%d) %v, speedup %.2fx", serial, procs, parallel, speedup)
	switch {
	case speedup >= 1.5:
		// The scaling claim holds.
	case speedup >= 1.15:
		// Some win but below target: on a shared/contended runner this is
		// indistinguishable from noise, so skip rather than flake.
		t.Skipf("marginal speedup %.2fx on %d procs (contended host?); byte-identity tests still cover correctness", speedup, procs)
	default:
		// No speedup at all means the sharding is effectively serialized —
		// a real regression regardless of host load.
		t.Errorf("parallel quartic encode speedup %.2fx on %d procs: sharding appears serialized", speedup, procs)
	}
}

func BenchmarkQuarticEncodeSerial1M(b *testing.B) {
	const n = 1 << 20
	q := ternaryData(11, n)
	dst := make([]byte, QuarticEncodedLen(n))
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuarticEncodeInto(q, dst)
	}
}

func BenchmarkQuarticEncodeParallel1M(b *testing.B) {
	const n = 1 << 20
	q := ternaryData(11, n)
	dst := make([]byte, QuarticEncodedLen(n))
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuarticEncodeParallel(q, dst, 0)
	}
}

func BenchmarkQuarticDecodeScaled1M(b *testing.B) {
	const n = 1 << 20
	q := ternaryData(12, n)
	enc := QuarticEncode(q)
	dst := make([]float32, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := QuarticDecodeScaledInto(enc, dst, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
