package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{0}, 0},
		{[]int{5}, 5},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Len() != c.want {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, tt.Len(), c.want)
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	tt := FromSlice(d, 2, 3)
	if tt.At(0, 0) != 1 || tt.At(1, 2) != 6 {
		t.Errorf("FromSlice layout wrong: %v", tt)
	}
	// Aliasing: mutating the slice is visible.
	d[0] = 42
	if tt.At(0, 0) != 42 {
		t.Error("FromSlice should alias the input slice")
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajor(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7, 1, 2)
	if tt.Data()[5] != 7 {
		t.Errorf("Set(1,2) should write flat index 5, data=%v", tt.Data())
	}
	if tt.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", tt.At(1, 2))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tt.At(2, 0)
}

func TestAtRankMismatchPanics(t *testing.T) {
	tt := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tt.At(1)
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Len() != 1 || s.Data()[0] != 3.5 {
		t.Errorf("Scalar broken: %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Error("Clone must not alias")
	}
	if !b.SameShape(a) {
		t.Error("Clone must preserve shape")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Errorf("CopyFrom: got %v want %v", a, b)
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := a.Reshape(2, 2)
	b.Set(9, 0, 1)
	if a.Data()[1] != 9 {
		t.Error("Reshape must share the backing array")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Reshape(3)
}

func TestZeroFill(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	a.Zero()
	if a.Data()[0] != 0 || a.Data()[1] != 0 {
		t.Error("Zero failed")
	}
	a.Fill(2.5)
	if a.Data()[0] != 2.5 || a.Data()[1] != 2.5 {
		t.Error("Fill failed")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.Add(b)
	if a.Data()[2] != 33 {
		t.Errorf("Add: %v", a)
	}
	a.Sub(b)
	if a.Data()[2] != 3 {
		t.Errorf("Sub: %v", a)
	}
	a.Scale(2)
	if a.Data()[0] != 2 {
		t.Errorf("Scale: %v", a)
	}
	a.AXPY(0.5, b)
	if a.Data()[0] != 7 { // 2 + 0.5*10
		t.Errorf("AXPY: %v", a)
	}
}

func TestMismatchedArithmeticPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Add":  func() { New(2).Add(New(3)) },
		"Sub":  func() { New(2).Sub(New(3)) },
		"AXPY": func() { New(2).AXPY(1, New(3)) },
		"Dot":  func() { New(2).Dot(New(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-3, 1, 2, 0}, 4)
	if a.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	if a.Sum() != 0 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.MeanAbs() != 1.5 {
		t.Errorf("MeanAbs = %v", a.MeanAbs())
	}
	if a.SquaredNorm() != 14 {
		t.Errorf("SquaredNorm = %v", a.SquaredNorm())
	}
	if a.CountZeros() != 1 {
		t.Errorf("CountZeros = %v", a.CountZeros())
	}
	b := FromSlice([]float32{1, 1, 1, 1}, 4)
	if a.Dot(b) != 0 {
		t.Errorf("Dot = %v", a.Dot(b))
	}
}

func TestMaxAbsEmpty(t *testing.T) {
	if New(0).MaxAbs() != 0 {
		t.Error("MaxAbs of empty tensor should be 0")
	}
	if New(0).MeanAbs() != 0 {
		t.Error("MeanAbs of empty tensor should be 0")
	}
}

func TestEqualAlmostEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2.05}, 2)
	if a.Equal(b) {
		t.Error("Equal should be exact")
	}
	if !a.AlmostEqual(b, 0.1) {
		t.Error("AlmostEqual eps=0.1 should hold")
	}
	if a.AlmostEqual(b, 0.01) {
		t.Error("AlmostEqual eps=0.01 should fail")
	}
	if a.Equal(New(3)) {
		t.Error("different shapes are never Equal")
	}
}

func TestEqualNaN(t *testing.T) {
	a := FromSlice([]float32{float32(math.NaN())}, 1)
	b := FromSlice([]float32{float32(math.NaN())}, 1)
	if !a.Equal(b) {
		t.Error("NaN elements at same position should compare Equal (identity semantics)")
	}
}

func TestStringTruncation(t *testing.T) {
	a := New(100)
	s := a.String()
	if len(s) == 0 || len(s) > 200 {
		t.Errorf("String() should be short, got %d chars", len(s))
	}
}

// Property: MaxAbs is an upper bound for |v| of every element.
func TestMaxAbsIsBoundProperty(t *testing.T) {
	f := func(vals []float32) bool {
		tt := FromSlice(vals, len(vals))
		m := tt.MaxAbs()
		for _, v := range vals {
			if float32(math.Abs(float64(v))) > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a.AXPY(alpha, b) equals elementwise a + alpha*b.
func TestAXPYLinearityProperty(t *testing.T) {
	f := func(seed uint64, alpha float32) bool {
		if math.IsNaN(float64(alpha)) || math.IsInf(float64(alpha), 0) {
			return true
		}
		rng := NewRNG(seed)
		a := New(64)
		b := New(64)
		FillNormal(a, 1, rng)
		FillNormal(b, 1, rng)
		want := make([]float32, 64)
		for i := range want {
			want[i] = a.Data()[i] + alpha*b.Data()[i]
		}
		a.AXPY(alpha, b)
		for i := range want {
			if a.Data()[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
