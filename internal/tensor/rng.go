package tensor

import (
	"encoding/binary"
	"errors"
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 core) used for reproducible weight initialization, synthetic
// data generation, and stochastic quantization. It is NOT safe for
// concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
	// cached spare normal variate for the Box-Muller transform
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator from the current state.
// The parent stream advances by one step.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// State exposes the generator's full internal state — the SplitMix64
// counter plus the cached Box-Muller spare — so checkpoints can capture a
// stream mid-flight and SetState can resume it bit-exactly.
func (r *RNG) State() (state uint64, hasSpare bool, spare float64) {
	return r.state, r.hasSpare, r.spare
}

// SetState restores state previously captured by State. After SetState the
// generator produces exactly the stream the captured generator would have.
func (r *RNG) SetState(state uint64, hasSpare bool, spare float64) {
	r.state, r.hasSpare, r.spare = state, hasSpare, spare
}

// RNGStateLen is the serialized size of an RNG state (AppendState).
const RNGStateLen = 17

// AppendState appends the generator's serialized state (RNGStateLen
// bytes, little-endian) to dst — the single wire layout every checkpoint
// section uses for RNG streams.
func (r *RNG) AppendState(dst []byte) []byte {
	var b [RNGStateLen]byte
	binary.LittleEndian.PutUint64(b[:], r.state)
	if r.hasSpare {
		b[8] = 1
	}
	binary.LittleEndian.PutUint64(b[9:], math.Float64bits(r.spare))
	return append(dst, b[:]...)
}

// RestoreState restores a state serialized by AppendState (exactly
// RNGStateLen bytes). Malformed input returns an error with the
// generator untouched.
func (r *RNG) RestoreState(src []byte) error {
	if len(src) != RNGStateLen {
		return errors.New("tensor: RNG state must be exactly RNGStateLen bytes")
	}
	if src[8] > 1 {
		return errors.New("tensor: corrupt RNG state flag")
	}
	r.SetState(binary.LittleEndian.Uint64(src), src[8] == 1, math.Float64frombits(binary.LittleEndian.Uint64(src[9:])))
	return nil
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate via Box-Muller.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNormal fills t with N(0, std^2) variates.
func FillNormal(t *Tensor, std float64, r *RNG) {
	d := t.Data()
	for i := range d {
		d[i] = float32(r.Norm() * std)
	}
}

// FillUniform fills t with uniform variates in [lo, hi).
func FillUniform(t *Tensor, lo, hi float64, r *RNG) {
	d := t.Data()
	for i := range d {
		d[i] = float32(lo + (hi-lo)*r.Float64())
	}
}
