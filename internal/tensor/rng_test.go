package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children should differ")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(12)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestFillNormalStd(t *testing.T) {
	r := NewRNG(14)
	tt := New(100000)
	FillNormal(tt, 0.5, r)
	var sq float64
	for _, v := range tt.Data() {
		sq += float64(v) * float64(v)
	}
	std := math.Sqrt(sq / float64(tt.Len()))
	if math.Abs(std-0.5) > 0.02 {
		t.Errorf("FillNormal std = %v, want 0.5", std)
	}
}

func TestFillUniformRange(t *testing.T) {
	r := NewRNG(15)
	tt := New(10000)
	FillUniform(tt, -2, 3, r)
	for _, v := range tt.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
}
