// Package tensor provides a dense float32 tensor type and the vectorizable
// bulk operations the 3LC compression pipeline and the neural-network
// substrate are built on.
//
// Tensors are row-major, contiguous, and intentionally minimal: the paper's
// compression schemes (3-value quantization, quartic encoding, zero-run
// encoding, sparsification) all operate on the flat element array, so the
// package favors flat []float32 access over fancy views. Shapes are carried
// for the benefit of the NN substrate and for wire-format framing.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float32 array with an attached shape.
// The zero value is an empty tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape.
// A scalar is represented by an empty shape and one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is NOT
// copied; the tensor aliases it. The product of shape must equal len(data).
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: nil, data: []float32{v}}
}

// Shape returns the tensor's shape. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying flat element slice. Mutations are visible to
// the tensor; this is the primary access path for the compression pipeline.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d != %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.shape, shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short human-readable description (shape + a few values).
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n > show {
		fmt.Fprintf(&b, " ... (%d total)", n)
	}
	b.WriteString("]")
	return b.String()
}

// --- Bulk arithmetic -------------------------------------------------------

// Add accumulates src into t element-wise: t += src.
func (t *Tensor) Add(src *Tensor) {
	a, b := t.data, src.data
	if len(a) != len(b) {
		panic("tensor: Add size mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Sub subtracts src from t element-wise: t -= src.
func (t *Tensor) Sub(src *Tensor) {
	a, b := t.data, src.data
	if len(a) != len(b) {
		panic("tensor: Sub size mismatch")
	}
	for i := range a {
		a[i] -= b[i]
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += alpha * src.
func (t *Tensor) AXPY(alpha float32, src *Tensor) {
	a, b := t.data, src.data
	if len(a) != len(b) {
		panic("tensor: AXPY size mismatch")
	}
	for i := range a {
		a[i] += alpha * b[i]
	}
}

// MaxAbs returns the maximum absolute value of the elements. For an empty
// tensor it returns 0.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// MeanAbs returns the average absolute value of the elements.
func (t *Tensor) MeanAbs() float64 {
	if len(t.data) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s / float64(len(t.data))
}

// Dot returns the inner product of t and o in float64.
func (t *Tensor) Dot(o *Tensor) float64 {
	a, b := t.data, o.data
	if len(a) != len(b) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// SquaredNorm returns the sum of squared elements in float64.
func (t *Tensor) SquaredNorm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return s
}

// CountZeros returns the number of exactly-zero elements.
func (t *Tensor) CountZeros() int {
	n := 0
	for _, v := range t.data {
		if v == 0 {
			n++
		}
	}
	return n
}

// Equal reports whether t and o have the same shape and identical elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] && !(math.IsNaN(float64(t.data[i])) && math.IsNaN(float64(o.data[i]))) {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether every element of t is within eps of o's.
func (t *Tensor) AlmostEqual(o *Tensor, eps float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		d := t.data[i] - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}
