package experiments

import (
	"fmt"
	"io"
	"time"

	"threelc/internal/encode"
	"threelc/internal/kernel"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// FusionRow compares one codec hot-path direction between the staged
// multi-sweep pipeline (package quant + encode, kept as the bit-identical
// reference) and the fused kernels (package kernel) that production code
// runs on.
type FusionRow struct {
	// Name identifies the direction and tensor size, e.g. "compress 1M".
	Name string
	// StagedNs / FusedNs are best-of-trials wall times per call.
	StagedNs float64
	FusedNs  float64
	// StagedPasses / FusedPasses count full sweeps over tensor-sized
	// memory (the quantity the fusion eliminates; wire-byte walks are not
	// counted).
	StagedPasses int
	FusedPasses  int
}

// Speedup is the staged/fused time ratio.
func (r FusionRow) Speedup() float64 {
	if r.FusedNs <= 0 {
		return 0
	}
	return r.StagedNs / r.FusedNs
}

// FusionSpeedup measures staged-vs-fused 3LC compress and decompress at n
// elements with recycled buffers on both sides (steady state, serial
// kernels), so the comparison isolates the pass-count reduction rather
// than allocation behavior. The two pipelines produce byte-identical
// wires; the kernel test suite pins that, this measures what it buys.
func FusionSpeedup(n int, sparsity float64) []FusionRow {
	rng := tensor.NewRNG(11)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.01, rng)

	measure := func(fn func()) float64 {
		fn() // warm up scratch capacities
		best := time.Duration(1<<63 - 1)
		iters := 3
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			if d := time.Since(start) / time.Duration(iters); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds())
	}

	// Staged compress: the seven-sweep reference with preallocated scratch
	// (accumulate, |max|, quantize, dequantize, residual, quartic pack,
	// zero-run emit).
	accStaged := tensor.New(n)
	deq := tensor.New(n)
	var tv quant.ThreeValue
	qbuf := make([]byte, encode.QuarticEncodedLen(n))
	var stagedWire []byte
	stagedCompress := measure(func() {
		accStaged.Add(in)
		quant.Quantize3Into(accStaged, sparsity, &tv)
		quant.DequantizeInto(&tv, deq)
		accStaged.Sub(deq)
		encode.QuarticEncodeInto(tv.Q, qbuf)
		stagedWire = encode.ZeroRunEncodeAppend(stagedWire[:0], qbuf)
	})

	// Fused compress: the two kernel passes.
	accFused := tensor.New(n)
	var fusedWire []byte
	var m float64
	fusedCompress := measure(func() {
		m = float64(kernel.AccumulateMaxAbs(accFused.Data(), in.Data())) * sparsity
		fusedWire = kernel.EncodeTernary(accFused.Data(), m, true, fusedWire[:0])
	})

	// Staged decompress: zero-run expand into scratch, then scaled quartic
	// decode (two sweeps of tensor-scale memory).
	out := tensor.New(n)
	zreScratch := make([]byte, encode.QuarticEncodedLen(n))
	m32 := float32(m)
	stagedDecompress := measure(func() {
		encode.ZeroRunDecodeInto(fusedWire, zreScratch)
		if err := encode.QuarticDecodeScaledInto(zreScratch, out.Data(), m32); err != nil {
			panic(err)
		}
	})

	// Fused decompress: the single LUT-driven pass.
	fusedDecompress := measure(func() {
		if err := kernel.DecodeTernary(fusedWire, true, m32, out.Data()); err != nil {
			panic(err)
		}
	})

	name := fmt.Sprintf("%dk", n>>10)
	if n >= 1<<20 {
		name = fmt.Sprintf("%dM", n>>20)
	}
	return []FusionRow{
		{Name: "compress " + name, StagedNs: stagedCompress, FusedNs: fusedCompress, StagedPasses: 7, FusedPasses: 2},
		{Name: "decompress " + name, StagedNs: stagedDecompress, FusedNs: fusedDecompress, StagedPasses: 2, FusedPasses: 1},
	}
}

// PrintFusionSpeedup renders the staged-vs-fused comparison.
func PrintFusionSpeedup(w io.Writer, rows []FusionRow) {
	fmt.Fprintln(w, "Staged vs fused kernels (byte-identical wires; sweeps = passes over tensor memory):")
	fmt.Fprintf(w, "  %-16s %14s %14s %9s %8s %8s\n", "stage", "staged ns/op", "fused ns/op", "speedup", "sweeps", "fused")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %14.0f %14.0f %8.2fx %8d %8d\n",
			r.Name, r.StagedNs, r.FusedNs, r.Speedup(), r.StagedPasses, r.FusedPasses)
	}
}
