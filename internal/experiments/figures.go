package experiments

import (
	"fmt"
	"io"

	"threelc/internal/train"
)

// CurvePoint is one (training time, accuracy) datapoint of Figures 4-6/8.
type CurvePoint struct {
	BudgetFrac  float64
	Steps       int
	TimeMinutes float64
	Accuracy    float64
}

// Curve is one design's tradeoff curve.
type Curve struct {
	Design string
	Points []CurvePoint
}

// TimeAccuracyCurves regenerates the Figure 4/5/6 data: total training
// time vs. test accuracy at 25/50/75/100% of standard training steps for
// the given designs at one bandwidth. Each budget is a separate training
// run because the cosine learning-rate schedule depends on the total step
// count (§5.3).
func TimeAccuracyCurves(s *Suite, designs []train.Design, bandwidthBps float64) ([]Curve, error) {
	var curves []Curve
	for _, d := range designs {
		c := Curve{Design: d.Name}
		for _, frac := range StepBudgets {
			steps := s.budgetSteps(frac)
			r, err := s.Run(d, steps)
			if err != nil {
				return nil, err
			}
			c.Points = append(c.Points, CurvePoint{
				BudgetFrac:  frac,
				Steps:       steps,
				TimeMinutes: r.TimeAt(bandwidthBps) / 60,
				Accuracy:    r.FinalAccuracy * 100,
			})
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// PrintCurves renders tradeoff curves as an aligned series table.
func PrintCurves(w io.Writer, title string, curves []Curve) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-24s %8s %8s %14s %12s\n", "Design", "Budget", "Steps", "Time (min)", "Accuracy(%)")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(w, "%-24s %7.0f%% %8d %14.2f %12.2f\n",
				c.Design, p.BudgetFrac*100, p.Steps, p.TimeMinutes, p.Accuracy)
		}
	}
}

// Figure4 is the 10 Mbps tradeoff (overview designs).
func Figure4(s *Suite) ([]Curve, error) {
	return TimeAccuracyCurves(s, OverviewDesigns(), Bandwidths[0])
}

// Figure5 is the 100 Mbps tradeoff.
func Figure5(s *Suite) ([]Curve, error) {
	return TimeAccuracyCurves(s, OverviewDesigns(), Bandwidths[1])
}

// Figure6 is the 1 Gbps tradeoff.
func Figure6(s *Suite) ([]Curve, error) {
	return TimeAccuracyCurves(s, OverviewDesigns(), Bandwidths[2])
}

// Figure8 is the sparsity-multiplier sensitivity tradeoff at 10 Mbps.
func Figure8(s *Suite) ([]Curve, error) {
	designs := []train.Design{ThreeLC(1.00), ThreeLC(1.50), ThreeLC(1.75), ThreeLC(1.90)}
	return TimeAccuracyCurves(s, designs, Bandwidths[0])
}

// TrainingSeries is one design's per-step loss plus periodic accuracy
// (Figure 7).
type TrainingSeries struct {
	Design string
	Steps  []int
	Loss   []float64
	Evals  []train.EvalRecord
}

// Figure7 regenerates the runtime training-loss and test-accuracy series
// for the representative designs, at standard training steps.
func Figure7(s *Suite) ([]TrainingSeries, error) {
	var out []TrainingSeries
	for _, d := range Figure7Designs() {
		r, err := s.Run(d, s.Opt.StandardSteps)
		if err != nil {
			return nil, err
		}
		ts := TrainingSeries{Design: d.Name, Evals: r.Evals}
		for _, sr := range r.StepRecords {
			ts.Steps = append(ts.Steps, sr.Step)
			ts.Loss = append(ts.Loss, sr.Loss)
		}
		out = append(out, ts)
	}
	return out, nil
}

// PrintFigure7 renders the loss/accuracy series, subsampled for legibility.
func PrintFigure7(w io.Writer, series []TrainingSeries, every int) {
	if every < 1 {
		every = 1
	}
	fmt.Fprintln(w, "Figure 7: Training loss (left) and test accuracy (right) using standard training steps")
	for _, ts := range series {
		fmt.Fprintf(w, "-- %s\n", ts.Design)
		fmt.Fprintf(w, "%8s %12s\n", "step", "loss")
		for i := 0; i < len(ts.Steps); i += every {
			fmt.Fprintf(w, "%8d %12.4f\n", ts.Steps[i], ts.Loss[i])
		}
		fmt.Fprintf(w, "%8s %12s\n", "step", "accuracy(%)")
		for _, e := range ts.Evals {
			fmt.Fprintf(w, "%8d %12.2f\n", e.Step, e.Accuracy*100)
		}
	}
}

// BitsSeries is the Figure 9 per-step compressed size series for one
// sparsity setting.
type BitsSeries struct {
	Sparsity float64
	Steps    []int
	// PushBits / PullBits are compressed bits per state change for
	// gradient pushes and model pulls (compressible tensors only).
	PushBits []float64
	PullBits []float64
	// NoZREBits is the constant quartic-encoding-only size (1.6 bits).
	NoZREBits float64
}

// Figure9 regenerates the compressed-size-per-state-change series for
// s=1.00 and s=1.75.
func Figure9(s *Suite) ([]BitsSeries, error) {
	var out []BitsSeries
	for _, sp := range []float64{1.00, 1.75} {
		r, err := s.Run(ThreeLC(sp), s.Opt.StandardSteps)
		if err != nil {
			return nil, err
		}
		bs := BitsSeries{Sparsity: sp, NoZREBits: 1.6}
		elems := float64(r.CompressibleElems)
		for _, sr := range r.StepRecords {
			bs.Steps = append(bs.Steps, sr.Step)
			bs.PushBits = append(bs.PushBits, sr.CompPushBytes*8/elems)
			bs.PullBits = append(bs.PullBits, sr.CompPullBytes*8/elems)
		}
		out = append(out, bs)
	}
	return out, nil
}

// PrintFigure9 renders the series, subsampled for legibility.
func PrintFigure9(w io.Writer, series []BitsSeries, every int) {
	if every < 1 {
		every = 1
	}
	fmt.Fprintln(w, "Figure 9: Compressed size per state change value using standard training steps")
	for _, bs := range series {
		fmt.Fprintf(w, "-- s=%.2f (without ZRE: %.2f bits)\n", bs.Sparsity, bs.NoZREBits)
		fmt.Fprintf(w, "%8s %12s %12s\n", "step", "push(bits)", "pull(bits)")
		for i := 0; i < len(bs.Steps); i += every {
			fmt.Fprintf(w, "%8d %12.3f %12.3f\n", bs.Steps[i], bs.PushBits[i], bs.PullBits[i])
		}
	}
}
