package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"threelc/internal/compress"
	"threelc/internal/tensor"
	"threelc/internal/train"
)

// AggRow is one (design, worker count) cell of the aggregation
// experiment: the server-side cost of decoding and summing all workers'
// pushes of one large tensor.
type AggRow struct {
	Design  string
	Workers int
	// StagedNs is decode-then-add per step (all workers): decode each
	// worker's wire into a scratch tensor, then a separate add sweep.
	StagedNs float64
	// FusedNs is the fused decode-accumulate per step: one pass per
	// worker payload, no scratch tensor (compress.DecompressAddInto,
	// serial kernels).
	FusedNs float64
	// ParallelNs is the fused form with the kernel-level range-partitioned
	// fan-out enabled (GOMAXPROCS workers; ternary wires shard the
	// accumulate sweep, byte-identical sums).
	ParallelNs float64
	// MBps is the fused serial aggregate bandwidth in decoded-float
	// megabytes per second across all payloads.
	MBps float64
}

// Speedup is the staged/fused time ratio.
func (r AggRow) Speedup() float64 {
	if r.FusedNs <= 0 {
		return 0
	}
	return r.StagedNs / r.FusedNs
}

// AggregateScalingDesigns is the default design set: the paper's
// strongest codec, the cheap int8 baseline, and the uncompressed floor.
func AggregateScalingDesigns() []train.Design {
	return []train.Design{
		DesignFloat32,
		DesignInt8,
		ThreeLC(1.75),
	}
}

// AggregateScaling measures workers × codec aggregation throughput — the
// experiment behind `3lc-bench -exp agg`. For each design and worker
// count it builds one wire per worker from distinct random gradients of
// an elems-sized tensor, then times three aggregation strategies over the
// identical payloads: staged decode-then-add, fused decode-accumulate,
// and fused with kernel-parallel spans. It also verifies the fused sum is
// bit-identical to the staged one before reporting a row.
func AggregateScaling(designs []train.Design, workerCounts []int, elems int, progress io.Writer) ([]AggRow, error) {
	var rows []AggRow
	for _, d := range designs {
		for _, workers := range workerCounts {
			row, err := measureAggregate(d, workers, elems)
			if err != nil {
				return nil, fmt.Errorf("aggregate scaling %s x%d: %w", d.Name, workers, err)
			}
			rows = append(rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "agg: %-20s workers=%d  %6.2fx fused speedup\n", d.Name, workers, row.Speedup())
			}
		}
	}
	return rows, nil
}

func measureAggregate(d train.Design, workers, elems int) (AggRow, error) {
	wires := make([][]byte, workers)
	for w := range wires {
		opts := d.Opts
		opts.Seed ^= uint64(w) + 1
		ctx := compress.New(d.Scheme, []int{elems}, opts)
		grad := tensor.New(elems)
		tensor.FillNormal(grad, 0.01, tensor.NewRNG(uint64(w)*131+7))
		wires[w] = ctx.CompressInto(grad, nil)
	}

	measure := func(fn func() error) (float64, error) {
		if err := fn(); err != nil { // warm scratch/LUT pools
			return 0, err
		}
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()), nil
	}

	scratch := tensor.New(elems)
	sumStaged := tensor.New(elems)
	stagedNs, err := measure(func() error {
		sumStaged.Zero()
		for _, wire := range wires {
			if err := compress.DecompressInto(wire, scratch); err != nil {
				return err
			}
			sumStaged.Add(scratch)
		}
		return nil
	})
	if err != nil {
		return AggRow{}, err
	}

	sumFused := tensor.New(elems)
	fusedNs, err := measure(func() error {
		sumFused.Zero()
		for _, wire := range wires {
			if err := compress.DecompressAddInto(wire, sumFused, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return AggRow{}, err
	}
	for i, v := range sumFused.Data() {
		if math.Float32bits(v) != math.Float32bits(sumStaged.Data()[i]) {
			return AggRow{}, fmt.Errorf("fused aggregate differs from staged at element %d", i)
		}
	}

	procs := runtime.GOMAXPROCS(0)
	parNs, err := measure(func() error {
		sumFused.Zero()
		for _, wire := range wires {
			if err := compress.DecompressAddInto(wire, sumFused, procs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return AggRow{}, err
	}

	return AggRow{
		Design:     d.Name,
		Workers:    workers,
		StagedNs:   stagedNs,
		FusedNs:    fusedNs,
		ParallelNs: parNs,
		MBps:       float64(4*elems*workers) / fusedNs * 1e3,
	}, nil
}

// PrintAggregateScaling renders the aggregation table.
func PrintAggregateScaling(w io.Writer, rows []AggRow) {
	fmt.Fprintln(w, "Aggregate scaling: server-side decode+sum of all workers' pushes (1M-element tensor)")
	fmt.Fprintln(w, "(staged = decode into scratch then add; fused = single decode-accumulate pass, bit-identical sums)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %8s %14s %14s %9s %14s %10s\n",
		"design", "workers", "staged ns/op", "fused ns/op", "speedup", "parallel ns", "MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8d %14.0f %14.0f %8.2fx %14.0f %10.0f\n",
			r.Design, r.Workers, r.StagedNs, r.FusedNs, r.Speedup(), r.ParallelNs, r.MBps)
	}
}

// WriteAggregateScalingCSV emits the rows as CSV.
func WriteAggregateScalingCSV(w io.Writer, rows []AggRow) error {
	if _, err := fmt.Fprintln(w, "design,workers,staged_ns,fused_ns,speedup,parallel_ns,mb_per_sec"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%q,%d,%.0f,%.0f,%.3f,%.0f,%.1f\n",
			r.Design, r.Workers, r.StagedNs, r.FusedNs, r.Speedup(), r.ParallelNs, r.MBps); err != nil {
			return err
		}
	}
	return nil
}
