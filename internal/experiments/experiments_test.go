package experiments

import (
	"bytes"
	"strings"
	"testing"

	"threelc/internal/data"
	"threelc/internal/train"
)

// tinySuite keeps experiment tests fast: small data, few steps, 3 workers.
func tinySuite() *Suite {
	opt := DefaultOptions()
	opt.Workers = 3
	opt.BatchPerWorker = 8
	opt.StandardSteps = 12
	opt.EvalEvery = 6
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 150, 60
	opt.Data = dcfg
	opt.Hidden = []int{12}
	return NewSuite(opt)
}

func TestDesignCatalog(t *testing.T) {
	rows := Table1Designs()
	if len(rows) != 11 {
		t.Fatalf("Table 1 has %d designs, want 11", len(rows))
	}
	if rows[0].Name != "32-bit float" {
		t.Errorf("first row %q", rows[0].Name)
	}
	if rows[10].Name != "3LC (s=1.90)" {
		t.Errorf("last row %q", rows[10].Name)
	}
	if len(OverviewDesigns()) != 9 {
		t.Errorf("overview set has %d designs, want 9", len(OverviewDesigns()))
	}
	if len(Figure7Designs()) != 5 {
		t.Errorf("figure 7 set has %d designs, want 5", len(Figure7Designs()))
	}
}

func TestThreeLCNames(t *testing.T) {
	if ThreeLC(1.75).Name != "3LC (s=1.75)" {
		t.Errorf("name %q", ThreeLC(1.75).Name)
	}
	if !strings.Contains(ThreeLCNoZRE(1.0).Name, "no ZRE") {
		t.Errorf("name %q", ThreeLCNoZRE(1.0).Name)
	}
	if ThreeLCNoZRE(1.0).Opts.ZeroRun {
		t.Error("no-ZRE design must disable zero-run encoding")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := tinySuite()
	r1, err := s.Run(DesignFloat32, 6)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(DesignFloat32, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical requests must return the cached result")
	}
}

func TestTable1Shape(t *testing.T) {
	s := tinySuite()
	rows, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows", len(rows))
	}
	base := rows[0]
	for _, bw := range []string{"10 Mbps", "100 Mbps", "1 Gbps"} {
		if v, ok := base.Speedup[bw]; !ok || v < 0.99 || v > 1.01 {
			t.Errorf("baseline speedup at %s = %v, want 1.0", bw, v)
		}
	}
	// 3LC must beat the baseline at 10 Mbps.
	for _, r := range rows {
		if strings.HasPrefix(r.Design, "3LC") && r.Speedup["10 Mbps"] < 1.5 {
			t.Errorf("%s speedup at 10 Mbps = %v, want > 1.5", r.Design, r.Speedup["10 Mbps"])
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "3LC (s=1.75)") {
		t.Error("printed table missing 3LC row")
	}
}

func TestTable2Shape(t *testing.T) {
	s := tinySuite()
	rows, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// "No ZRE" is exactly 20x / 1.6 bits (fixed-length quartic encoding).
	if rows[0].CompressionRatio < 19 || rows[0].CompressionRatio > 20.1 {
		t.Errorf("No ZRE ratio %v, want ~20", rows[0].CompressionRatio)
	}
	if rows[0].BitsPerChange < 1.59 || rows[0].BitsPerChange > 1.7 {
		t.Errorf("No ZRE bits %v, want ~1.6", rows[0].BitsPerChange)
	}
	// ZRE rows must beat No ZRE.
	for _, r := range rows[1:] {
		if r.CompressionRatio <= rows[0].CompressionRatio {
			t.Errorf("s=%s ratio %v does not beat No ZRE", r.Label, r.CompressionRatio)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "bits per state change") {
		t.Error("printed table missing header")
	}
}

func TestCurvesShape(t *testing.T) {
	s := tinySuite()
	curves, err := TimeAccuracyCurves(s, []train.Design{DesignFloat32, ThreeLC(1.00)}, Bandwidths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 4 {
			t.Fatalf("%s has %d points, want 4", c.Design, len(c.Points))
		}
		// Time grows with budget.
		for i := 1; i < 4; i++ {
			if c.Points[i].TimeMinutes <= c.Points[i-1].TimeMinutes {
				t.Errorf("%s: time not increasing with budget", c.Design)
			}
		}
	}
	var buf bytes.Buffer
	PrintCurves(&buf, "test", curves)
	if !strings.Contains(buf.String(), "100%") {
		t.Error("printed curves missing budget column")
	}
}

func TestFigure7Series(t *testing.T) {
	s := tinySuite()
	series, err := Figure7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	for _, ts := range series {
		if len(ts.Steps) != s.Opt.StandardSteps {
			t.Errorf("%s has %d loss points", ts.Design, len(ts.Steps))
		}
		if len(ts.Evals) == 0 {
			t.Errorf("%s has no accuracy evals", ts.Design)
		}
	}
	var buf bytes.Buffer
	PrintFigure7(&buf, series, 4)
	if !strings.Contains(buf.String(), "accuracy") {
		t.Error("printed figure missing accuracy series")
	}
}

func TestFigure9Series(t *testing.T) {
	s := tinySuite()
	series, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, bs := range series {
		if bs.NoZREBits != 1.6 {
			t.Errorf("No-ZRE reference %v, want 1.6", bs.NoZREBits)
		}
		for i, b := range bs.PushBits {
			if b <= 0 || b > 1.7 {
				t.Errorf("s=%v push bits[%d] = %v outside (0, 1.7]", bs.Sparsity, i, b)
			}
		}
	}
	var buf bytes.Buffer
	PrintFigure9(&buf, series, 3)
	if !strings.Contains(buf.String(), "s=1.75") {
		t.Error("printed figure missing s=1.75 series")
	}
}

func TestFigure8UsesOnly3LC(t *testing.T) {
	s := tinySuite()
	curves, err := Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if !strings.HasPrefix(c.Design, "3LC") {
			t.Errorf("unexpected design %q in Figure 8", c.Design)
		}
	}
}

func TestBandwidthName(t *testing.T) {
	if BandwidthName(Bandwidths[0]) != "10 Mbps" {
		t.Error("bandwidth naming broken")
	}
	if BandwidthName(12345) == "" {
		t.Error("fallback naming broken")
	}
}

func TestBudgetSteps(t *testing.T) {
	s := tinySuite()
	if s.budgetSteps(0.25) != 3 {
		t.Errorf("25%% of 12 = %d, want 3", s.budgetSteps(0.25))
	}
	if s.budgetSteps(0.001) != 1 {
		t.Error("budget must be at least 1 step")
	}
}
