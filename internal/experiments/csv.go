package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters for downstream plotting. Every table/figure result type has
// one writer; columns are stable and documented in the header row.

// WriteTable1CSV emits Table 1 rows.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "speedup_10mbps", "speedup_100mbps", "speedup_1gbps", "accuracy_pct", "diff_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Design,
			f(r.Speedup["10 Mbps"]), f(r.Speedup["100 Mbps"]), f(r.Speedup["1 Gbps"]),
			f(r.Accuracy), f(r.Diff),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV emits Table 2 rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"s", "compression_ratio", "bits_per_state_change"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Label, f(r.CompressionRatio), f(r.BitsPerChange)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurvesCSV emits Figure 4/5/6/8 tradeoff curves.
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "budget_frac", "steps", "time_minutes", "accuracy_pct"}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			rec := []string{c.Design, f(p.BudgetFrac), strconv.Itoa(p.Steps), f(p.TimeMinutes), f(p.Accuracy)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV emits Figure 7 loss/accuracy series (long format).
func WriteSeriesCSV(w io.Writer, series []TrainingSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "kind", "step", "value"}); err != nil {
		return err
	}
	for _, ts := range series {
		for i, s := range ts.Steps {
			if err := cw.Write([]string{ts.Design, "loss", strconv.Itoa(s), f(ts.Loss[i])}); err != nil {
				return err
			}
		}
		for _, e := range ts.Evals {
			if err := cw.Write([]string{ts.Design, "accuracy_pct", strconv.Itoa(e.Step), f(e.Accuracy * 100)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBitsCSV emits Figure 9 bits-per-state-change series.
func WriteBitsCSV(w io.Writer, series []BitsSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sparsity", "step", "push_bits", "pull_bits", "no_zre_bits"}); err != nil {
		return err
	}
	for _, bs := range series {
		for i, s := range bs.Steps {
			rec := []string{f(bs.Sparsity), strconv.Itoa(s), f(bs.PushBits[i]), f(bs.PullBits[i]), f(bs.NoZREBits)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string {
	return fmt.Sprintf("%g", v)
}
