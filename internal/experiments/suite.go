package experiments

import (
	"fmt"
	"io"
	"sync"

	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

// Options sizes the experiment suite. The defaults give a laptop-scale run
// that preserves the paper's compute-to-communication regime; StandardSteps
// plays the role of the paper's 25,600-step standard training run.
type Options struct {
	Workers        int
	BatchPerWorker int
	// StandardSteps is the 100% training-step budget.
	StandardSteps int
	// Hidden sizes the MLP workload; see UseResNet for the CNN workload.
	Hidden []int
	// UseResNet switches the workload to MicroResNet (slower, closer to
	// the paper's ResNet-110 architecture).
	UseResNet bool
	// Data configures the synthetic dataset.
	Data data.Config
	// EvalEvery controls the cadence of accuracy measurements (Figure 7).
	EvalEvery int
	Seed      uint64
	// Progress, if non-nil, receives one line per completed training run.
	Progress io.Writer
}

// DefaultOptions returns the standard suite configuration.
func DefaultOptions() Options {
	return Options{
		Workers:        10,
		BatchPerWorker: 32,
		StandardSteps:  300,
		Hidden:         []int{48},
		Data:           data.DefaultConfig(),
		EvalEvery:      25,
		Seed:           1,
	}
}

// Bandwidths under evaluation, in Table 1 column order.
var Bandwidths = []float64{netsim.Mbps10, netsim.Mbps100, netsim.Gbps1}

// BandwidthName formats a bandwidth the way the paper's tables do.
func BandwidthName(bps float64) string {
	switch bps {
	case netsim.Mbps10:
		return "10 Mbps"
	case netsim.Mbps100:
		return "100 Mbps"
	case netsim.Gbps1:
		return "1 Gbps"
	}
	return fmt.Sprintf("%.0f bps", bps)
}

// StepBudgets are the fractional training-step budgets of Figures 4-6 and 8.
var StepBudgets = []float64{0.25, 0.50, 0.75, 1.00}

// Suite runs and caches training runs shared across experiments: Table 1
// and Figures 4-6 reuse the same 100%-budget runs, Figure 8 reuses the
// 3LC runs, and Figures 7 and 9 read the recorded per-step series.
type Suite struct {
	Opt Options

	mu    sync.Mutex
	cache map[string]*train.Result
}

// NewSuite creates a suite with the given options.
func NewSuite(opt Options) *Suite {
	return &Suite{Opt: opt, cache: make(map[string]*train.Result)}
}

func (s *Suite) buildModel() func() *nn.Model {
	opt := s.Opt
	if opt.UseResNet {
		return func() *nn.Model {
			cfg := nn.DefaultMicroResNet()
			cfg.InChannels = opt.Data.C
			cfg.ImageSize = opt.Data.H
			cfg.Classes = opt.Data.Classes
			cfg.Seed = opt.Seed
			return nn.NewMicroResNet(cfg)
		}
	}
	in := opt.Data.C * opt.Data.H * opt.Data.W
	return func() *nn.Model {
		return nn.NewMLP(in, opt.Hidden, opt.Data.Classes, opt.Seed)
	}
}

// Run executes (or returns the cached result of) one training run for the
// design at the given step count. All runs record per-step series so that
// training time can be recomputed at any bandwidth.
func (s *Suite) Run(design train.Design, steps int) (*train.Result, error) {
	key := fmt.Sprintf("%s|%d", design.Name, steps)
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	optCfg := opt.TunedSGDConfig(s.Opt.Workers, steps)
	cfg := train.Config{
		Design:         design,
		Workers:        s.Opt.Workers,
		BatchPerWorker: s.Opt.BatchPerWorker,
		Steps:          steps,
		Data:           s.Opt.Data,
		BuildModel:     s.buildModel(),
		FlatInput:      !s.Opt.UseResNet,
		Augment:        s.Opt.UseResNet, // crop/flip only meaningful on images fed to CNNs
		Net:            netsim.DefaultParams(netsim.Gbps1),
		Optimizer:      &optCfg,
		EvalEvery:      s.Opt.EvalEvery,
		RecordSteps:    true,
		Seed:           s.Opt.Seed,
	}
	cfg.Net.Workers = s.Opt.Workers
	r, err := train.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s @ %d steps: %w", design.Name, steps, err)
	}
	if s.Opt.Progress != nil {
		fmt.Fprintf(s.Opt.Progress, "ran %-24s steps=%-5d acc=%.4f ratio=%.1fx\n",
			design.Name, steps, r.FinalAccuracy, r.CompressionRatio())
	}
	s.mu.Lock()
	s.cache[key] = r
	s.mu.Unlock()
	return r, nil
}

// budgetSteps converts a fractional budget into a concrete step count.
func (s *Suite) budgetSteps(frac float64) int {
	n := int(float64(s.Opt.StandardSteps)*frac + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
