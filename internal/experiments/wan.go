package experiments

import (
	"fmt"
	"io"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

// WANTopology is one point of the topology axis of the WAN experiment.
type WANTopology struct {
	Label string
	// Regions is the hierarchical region count (1 = flat star topology).
	Regions    int
	Recompress bool
	Entropy    compress.EntropyAlgo
}

// WANTopologies is the default topology axis: flat reference, exact
// hierarchical relay with and without the entropy second stage, and fused
// recompress with and without it.
func WANTopologies(regions int) []WANTopology {
	if regions < 2 {
		regions = 2
	}
	return []WANTopology{
		{Label: "flat", Regions: 1},
		{Label: "hier/exact", Regions: regions},
		{Label: "hier/exact+huff", Regions: regions, Entropy: compress.EntropyHuffman},
		{Label: "hier/recomp", Regions: regions, Recompress: true},
		{Label: "hier/recomp+huff", Regions: regions, Recompress: true, Entropy: compress.EntropyHuffman},
	}
}

// WANRow is one (design, topology) measurement.
type WANRow struct {
	Design   string
	Topology string
	Regions  int
	// WANKBPerStep is the mean inter-region traffic per step across the
	// slow links, both directions summed over all regions. Zero for the
	// flat topology (nothing crosses a WAN).
	WANKBPerStep float64
	// WANBitsPerElem is that traffic normalized to model size:
	// WAN bits per model element per step.
	WANBitsPerElem float64
	// WANReduction is the same design's exact-relay WAN traffic divided
	// by this row's — how much the stage/mode saved on the slow link
	// (1.00 for the exact relay itself, 0 where no WAN exists).
	WANReduction float64
	// StepMs is the mean virtual step time under the simulated topology.
	StepMs float64
	// Accuracy is the final test accuracy (bit-identical to flat for the
	// exact topologies; recompress re-quantizes and may drift).
	Accuracy float64
}

// wanWorkload is the fixed small training workload all WAN cells share.
func wanWorkload(d train.Design, workers, steps int) train.Config {
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 240, 80
	in := dcfg.C * dcfg.H * dcfg.W
	optCfg := opt.TunedSGDConfig(workers, steps)
	cfg := train.Config{
		Design:         d,
		Workers:        workers,
		BatchPerWorker: 8,
		Steps:          steps,
		Data:           dcfg,
		BuildModel:     func() *nn.Model { return nn.NewMLP(in, []int{32}, dcfg.Classes, 1) },
		FlatInput:      true,
		Net:            netsim.DefaultParams(netsim.Gbps1),
		Optimizer:      &optCfg,
		Seed:           1,
	}
	cfg.Net.Workers = workers
	return cfg
}

// WANSweep measures every (design, topology) cell of the WAN experiment
// behind `3lc-bench -exp wan`: the local tier runs at 1 Gbps while each
// region's link to the global tier is throttled to wanBps with one-way
// latency wanLatencySec. Reported WAN bytes are measured wire sizes (the
// entropy stage actually codes the streams), not estimates.
func WANSweep(designs []train.Design, topos []WANTopology, workers, steps int, wanBps, wanLatencySec float64, progress io.Writer) ([]WANRow, error) {
	if workers < 2 {
		workers = 4
	}
	if steps < 1 {
		steps = 12
	}
	var rows []WANRow
	for _, d := range designs {
		exactKB := 0.0
		for _, topo := range topos {
			cfg := wanWorkload(d, workers, steps)
			cfg.Regions = topo.Regions
			cfg.RegionRecompress = topo.Recompress
			cfg.RegionEntropy = topo.Entropy
			if topo.Regions > 1 {
				cfg.Net.WANBandwidthBps = wanBps
				cfg.Net.WANLatencySec = wanLatencySec
			}
			res, err := train.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("wan sweep %s %s: %w", d.Name, topo.Label, err)
			}
			row := WANRow{
				Design:   d.Name,
				Topology: topo.Label,
				Regions:  topo.Regions,
				StepMs:   res.PerStepSec * 1e3,
				Accuracy: res.FinalAccuracy,
			}
			if topo.Regions > 1 {
				perStep := float64(res.TotalWANBytes) / float64(steps)
				row.WANKBPerStep = perStep / 1e3
				row.WANBitsPerElem = perStep * 8 / float64(res.NumParam)
				if topo.Label == "hier/exact" || (exactKB == 0 && !topo.Recompress && topo.Entropy == compress.EntropyOff) {
					exactKB = row.WANKBPerStep
				}
				if exactKB > 0 {
					row.WANReduction = exactKB / row.WANKBPerStep
				}
			}
			rows = append(rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "wan: %-20s %-18s %8.1f KB/step  %7.2f ms/step\n",
					d.Name, topo.Label, row.WANKBPerStep, row.StepMs)
			}
		}
	}
	return rows, nil
}

// WANDesigns is the default design axis: the uncompressed baseline, the
// cheap quantizer, and 3LC — the codecs whose WAN behavior brackets the
// paper's traffic spectrum.
func WANDesigns() []train.Design {
	return []train.Design{
		DesignFloat32,
		DesignInt8,
		ThreeLC(1.00),
	}
}

// PrintWANSweep renders the WAN experiment table.
func PrintWANSweep(w io.Writer, rows []WANRow, wanBps, wanLatencySec float64) {
	fmt.Fprintf(w, "WAN experiment: hierarchical two-level aggregation over %.0f Mbps inter-region links (%.0f ms one-way)\n",
		wanBps/1e6, wanLatencySec*1e3)
	fmt.Fprintln(w, "(WAN KB/step is measured slow-link traffic; reduction is vs the same design's exact relay)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %-18s %8s %12s %11s %10s %10s %9s\n",
		"design", "topology", "regions", "WAN KB/step", "bits/elem", "reduction", "step ms", "accuracy")
	for _, r := range rows {
		red := "-"
		if r.WANReduction > 0 {
			red = fmt.Sprintf("%.2fx", r.WANReduction)
		}
		fmt.Fprintf(w, "%-22s %-18s %8d %12.1f %11.2f %10s %10.2f %9.3f\n",
			r.Design, r.Topology, r.Regions, r.WANKBPerStep, r.WANBitsPerElem, red, r.StepMs, r.Accuracy)
	}
}

// WriteWANSweepCSV emits the rows as CSV.
func WriteWANSweepCSV(w io.Writer, rows []WANRow) error {
	if _, err := fmt.Fprintln(w, "design,topology,regions,wan_kb_per_step,wan_bits_per_elem,wan_reduction,step_ms,accuracy"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%q,%q,%d,%.3f,%.4f,%.4f,%.4f,%.4f\n",
			r.Design, r.Topology, r.Regions, r.WANKBPerStep, r.WANBitsPerElem, r.WANReduction, r.StepMs, r.Accuracy); err != nil {
			return err
		}
	}
	return nil
}
