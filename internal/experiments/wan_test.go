package experiments

import (
	"bytes"
	"strings"
	"testing"

	"threelc/internal/netsim"
)

func TestWANSweepShape(t *testing.T) {
	rows, err := WANSweep(WANDesigns()[:2], WANTopologies(2), 4, 4, netsim.Mbps100, 20e-3, nil)
	if err != nil {
		t.Fatal(err)
	}
	topos := WANTopologies(2)
	if len(rows) != 2*len(topos) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(topos))
	}
	byTopo := map[string]WANRow{}
	for _, r := range rows[:len(topos)] { // first design's block
		byTopo[r.Topology] = r
	}
	flat := byTopo["flat"]
	if flat.WANKBPerStep != 0 || flat.WANReduction != 0 || flat.Regions != 1 {
		t.Errorf("flat row carries WAN traffic: %+v", flat)
	}
	exact := byTopo["hier/exact"]
	if exact.WANKBPerStep <= 0 {
		t.Errorf("exact relay moved no WAN bytes: %+v", exact)
	}
	if exact.WANReduction != 1 {
		t.Errorf("exact relay reduction %v, want 1.0 (its own baseline)", exact.WANReduction)
	}
	// The exact topology is bit-identical to flat; recompress forwards
	// one stream per region and must shrink the slow link.
	if exact.Accuracy != flat.Accuracy {
		t.Errorf("exact relay accuracy %v differs from flat %v", exact.Accuracy, flat.Accuracy)
	}
	recomp := byTopo["hier/recomp"]
	if recomp.WANKBPerStep >= exact.WANKBPerStep {
		t.Errorf("recompress WAN %v KB/step not below exact %v", recomp.WANKBPerStep, exact.WANKBPerStep)
	}
	if recomp.WANReduction <= 1 {
		t.Errorf("recompress reduction %v not above 1", recomp.WANReduction)
	}
	// The hierarchical step pays the slow link the flat topology never
	// crosses.
	if exact.StepMs <= flat.StepMs {
		t.Errorf("hierarchical step %v ms not above flat %v ms", exact.StepMs, flat.StepMs)
	}

	var buf bytes.Buffer
	PrintWANSweep(&buf, rows, netsim.Mbps100, 20e-3)
	if !strings.Contains(buf.String(), "hier/recomp+huff") {
		t.Error("printed table missing topology rows")
	}
	buf.Reset()
	if err := WriteWANSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(rows)+1)
	}
}
