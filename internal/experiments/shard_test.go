package experiments

import (
	"testing"

	"threelc/internal/train"
)

func TestShardScalingRows(t *testing.T) {
	rows, err := ShardScaling([]train.Design{DesignInt8}, []int{1, 2}, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	one, two := rows[0], rows[1]
	if one.Shards != 1 || two.Shards != 2 {
		t.Fatalf("shard counts %d, %d", one.Shards, two.Shards)
	}
	if one.StepsPerSec <= 0 || two.StepsPerSec <= 0 || one.WireMBPerSec <= 0 {
		t.Errorf("non-positive throughput: %+v %+v", one, two)
	}
	if one.Speedup != 1 {
		t.Errorf("1-shard speedup = %v, want 1", one.Speedup)
	}
	if two.Speedup <= 0 {
		t.Errorf("2-shard speedup = %v, want > 0", two.Speedup)
	}
	// Dividing aggregate traffic across 2 server NICs must not make the
	// communication-bound virtual step slower.
	if two.VirtualStepMs > one.VirtualStepMs*1.001 {
		t.Errorf("virtual step grew with shards: %v -> %v ms", one.VirtualStepMs, two.VirtualStepMs)
	}
}
