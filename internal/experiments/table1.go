package experiments

import (
	"fmt"
	"io"

	"threelc/internal/train"
)

// Table1Row is one design's row of Table 1: speedup over the 32-bit float
// baseline at each bandwidth, plus test accuracy and its difference from
// the baseline, all at standard training steps.
type Table1Row struct {
	Design   string
	Speedup  map[string]float64 // bandwidth name -> speedup
	Accuracy float64
	Diff     float64
}

// Table1 regenerates Table 1.
func Table1(s *Suite) ([]Table1Row, error) {
	steps := s.Opt.StandardSteps
	base, err := s.Run(DesignFloat32, steps)
	if err != nil {
		return nil, err
	}
	baseTime := make(map[string]float64)
	for _, bw := range Bandwidths {
		baseTime[BandwidthName(bw)] = base.TimeAt(bw)
	}

	var rows []Table1Row
	for _, d := range Table1Designs() {
		r, err := s.Run(d, steps)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Design:   d.Name,
			Speedup:  make(map[string]float64),
			Accuracy: r.FinalAccuracy * 100,
			Diff:     (r.FinalAccuracy - base.FinalAccuracy) * 100,
		}
		for _, bw := range Bandwidths {
			name := BandwidthName(bw)
			row.Speedup[name] = baseTime[name] / r.TimeAt(bw)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders the rows in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Speedup over the baseline and test accuracy using standard training steps")
	fmt.Fprintf(w, "%-24s %10s %10s %10s %12s %10s\n",
		"Design", "@10 Mbps", "@100 Mbps", "@1 Gbps", "Accuracy(%)", "Diff")
	for _, r := range rows {
		diff := fmt.Sprintf("%+.2f", r.Diff)
		if r.Design == "32-bit float" {
			diff = ""
		}
		fmt.Fprintf(w, "%-24s %10.2f %10.2f %10.2f %12.2f %10s\n",
			r.Design,
			r.Speedup["10 Mbps"], r.Speedup["100 Mbps"], r.Speedup["1 Gbps"],
			r.Accuracy, diff)
	}
}

// Table2Row is one sparsity setting's row of Table 2.
type Table2Row struct {
	Label            string
	CompressionRatio float64
	BitsPerChange    float64
}

// Table2 regenerates Table 2: average traffic compression of 3LC across a
// standard training run, with and without zero-run encoding.
func Table2(s *Suite) ([]Table2Row, error) {
	steps := s.Opt.StandardSteps
	configs := []struct {
		label  string
		design train.Design
	}{
		{"No ZRE", ThreeLCNoZRE(1.00)},
		{"1.00", ThreeLC(1.00)},
		{"1.50", ThreeLC(1.50)},
		{"1.75", ThreeLC(1.75)},
		{"1.90", ThreeLC(1.90)},
	}
	var rows []Table2Row
	for _, c := range configs {
		r, err := s.Run(c.design, steps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Label:            c.label,
			CompressionRatio: r.CompressionRatio(),
			BitsPerChange:    r.BitsPerChange(),
		})
	}
	return rows, nil
}

// PrintTable2 renders the rows in the paper's layout.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Average traffic compression of 3LC using standard training steps")
	fmt.Fprintf(w, "%-8s %22s %22s\n", "s", "Compression ratio (x)", "bits per state change")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %22.1f %22.3f\n", r.Label, r.CompressionRatio, r.BitsPerChange)
	}
}
