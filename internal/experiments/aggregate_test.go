package experiments

import "testing"

// TestAggregateScaling runs a miniature aggregation sweep: rows must come
// back for every (design, workers) cell with positive timings, and the
// experiment's internal bit-equality check (fused sum == staged sum) must
// hold — it returns an error otherwise.
func TestAggregateScaling(t *testing.T) {
	designs := AggregateScalingDesigns()
	workerCounts := []int{1, 3}
	rows, err := AggregateScaling(designs, workerCounts, 1<<13, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(designs) * len(workerCounts); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.StagedNs <= 0 || r.FusedNs <= 0 || r.ParallelNs <= 0 {
			t.Errorf("%s x%d: non-positive timing %+v", r.Design, r.Workers, r)
		}
		if r.Speedup() <= 0 {
			t.Errorf("%s x%d: speedup %v", r.Design, r.Workers, r.Speedup())
		}
		if r.MBps <= 0 {
			t.Errorf("%s x%d: bandwidth %v", r.Design, r.Workers, r.MBps)
		}
	}
	// CSV and table rendering must not error on real rows.
	if err := WriteAggregateScalingCSV(discard{}, rows); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
