package experiments

import (
	"fmt"
	"io"
	"time"

	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/shard"
	"threelc/internal/tensor"
	"threelc/internal/train"
)

// ShardRow is one (design, shard count) measurement of the sharded
// parameter-server tier.
type ShardRow struct {
	Design string
	Shards int
	// StepsPerSec is the measured in-process push/pull round-trip rate of
	// the tier (every worker pushing, shards decoding + updating +
	// compressing pulls), with each shard pinned to a serial codec — the
	// model of one single-core PS node per shard.
	StepsPerSec float64
	// Speedup is StepsPerSec relative to the same design's smallest
	// measured shard count (1 when the sweep includes it).
	Speedup float64
	// WireMBPerSec is the aggregate push+pull wire traffic the tier
	// sustains at that rate.
	WireMBPerSec float64
	// VirtualStepMs is the netsim step time at 10 Mbps with the aggregate
	// server traffic divided across the shard NICs (netsim.Params.Servers).
	VirtualStepMs float64
}

// shardScalingModel builds the measurement workload: an MLP big enough
// that codec time dominates queueing overhead, with enough tensors
// (4 hidden layers -> 14 tensors) for the packer to balance.
func shardScalingModel() *nn.Model {
	return nn.NewMLP(256, []int{512, 512, 512, 512}, 32, 7)
}

// ShardScaling measures the sharded tier's aggregate push/pull throughput
// as the shard count grows, for each design: the shard-scaling experiment
// behind `3lc-bench -exp shard`. Real speedup requires spare cores
// (GOMAXPROCS >= max shard count); on smaller hosts the rows still print
// so the wire accounting and virtual step times can be inspected.
func ShardScaling(designs []train.Design, shardCounts []int, workers, steps int, progress io.Writer) ([]ShardRow, error) {
	if workers < 1 {
		workers = 2
	}
	if steps < 1 {
		steps = 6
	}
	var rows []ShardRow
	for _, d := range designs {
		for _, count := range shardCounts {
			row, err := measureShard(d, count, workers, steps)
			if err != nil {
				return nil, fmt.Errorf("shard scaling %s x%d: %w", d.Name, count, err)
			}
			rows = append(rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "shard: %-20s shards=%d  %6.1f steps/s\n", d.Name, count, row.StepsPerSec)
			}
		}
	}
	// Speedups are relative to each design's smallest measured shard count
	// (1 when the sweep includes it), computed after the fact so the
	// baseline exists regardless of sweep order (e.g. -shards 4,2,1).
	base := map[string]ShardRow{}
	for _, r := range rows {
		if b, ok := base[r.Design]; !ok || r.Shards < b.Shards {
			base[r.Design] = r
		}
	}
	for i, r := range rows {
		if b := base[r.Design]; b.StepsPerSec > 0 {
			rows[i].Speedup = r.StepsPerSec / b.StepsPerSec
		}
	}
	return rows, nil
}

// measureShard runs one (design, shard count) cell.
func measureShard(d train.Design, shards, workers, steps int) (ShardRow, error) {
	cfg := ps.Config{
		Scheme:           d.Scheme,
		Opts:             d.Opts,
		Workers:          workers,
		MinCompressElems: 1,
		Parallelism:      1, // one single-core PS node per shard
		Optimizer:        opt.DefaultSGDConfig(workers, steps),
	}
	global := shardScalingModel()
	cl, err := shard.NewCluster(global, cfg, shard.Config{Shards: shards})
	if err != nil {
		panic(err) // experiment harness over a default placement: cannot fail
	}
	defer cl.Close()

	wires := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		m := shardScalingModel()
		m.CopyParamsFrom(global)
		wk := ps.NewWorker(w, m, cfg)
		rng := tensor.NewRNG(uint64(w) + 5)
		x := tensor.New(4, 256)
		tensor.FillNormal(x, 1, rng)
		wk.Model.TrainStep(x, []int{0, 1, 2, 3})
		wires[w], _ = wk.CompressGrads()
	}

	var pushBytes, pullBytes int
	var codecSec float64
	round := func() error {
		cl.BeginStep()
		for w := 0; w < workers; w++ {
			if _, err := cl.AddPush(w, wires[w]); err != nil {
				return err
			}
		}
		pulls, dur, err := cl.FinishStep()
		if err != nil {
			return err
		}
		pushBytes = 0
		for w := 0; w < workers; w++ {
			pushBytes += ps.WireBytes(wires[w])
		}
		pullBytes = ps.WireBytes(pulls)
		codecSec = dur.Seconds()
		return nil
	}

	// Warm buffer capacities out of the measurement.
	if err := round(); err != nil {
		return ShardRow{}, err
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if err := round(); err != nil {
			return ShardRow{}, err
		}
	}
	elapsed := time.Since(start).Seconds()
	sps := float64(steps) / elapsed

	net := netsim.DefaultParams(netsim.Mbps10)
	net.Workers = workers
	net.Calibrate(global.NumParams()*4, netsim.Gbps1, 1.5)
	net.Servers = shards
	perPush := make([]int, workers)
	perPull := make([]int, workers)
	for w := range perPush {
		perPush[w] = pushBytes / workers
		perPull[w] = pullBytes
	}
	virtual := net.StepTime(perPush, perPull, codecSec)

	return ShardRow{
		Design:        d.Name,
		Shards:        shards,
		StepsPerSec:   sps,
		WireMBPerSec:  float64(pushBytes+pullBytes*workers) * sps / 1e6,
		VirtualStepMs: virtual * 1e3,
	}, nil
}

// PrintShardScaling renders the shard-scaling table.
func PrintShardScaling(w io.Writer, rows []ShardRow) {
	fmt.Fprintln(w, "Shard scaling: aggregate push/pull throughput of the sharded PS tier")
	fmt.Fprintln(w, "(each shard = one single-core PS node; speedup vs the design's smallest shard count)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %7s %12s %9s %12s %15s\n",
		"design", "shards", "steps/sec", "speedup", "wire MB/s", "step@10Mbps ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %7d %12.1f %8.2fx %12.1f %15.1f\n",
			r.Design, r.Shards, r.StepsPerSec, r.Speedup, r.WireMBPerSec, r.VirtualStepMs)
	}
}

// WriteShardScalingCSV emits the rows as CSV.
func WriteShardScalingCSV(w io.Writer, rows []ShardRow) error {
	if _, err := fmt.Fprintln(w, "design,shards,steps_per_sec,speedup,wire_mb_per_sec,virtual_step_ms"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%q,%d,%.3f,%.3f,%.3f,%.3f\n",
			r.Design, r.Shards, r.StepsPerSec, r.Speedup, r.WireMBPerSec, r.VirtualStepMs); err != nil {
			return err
		}
	}
	return nil
}

// ShardScalingDesigns is the default design set for the shard experiment:
// the paper's strongest codec at two sparsity levels plus the cheap int8
// baseline, so the sweep shows scaling for both heavy and light codecs.
func ShardScalingDesigns() []train.Design {
	return []train.Design{
		DesignInt8,
		ThreeLC(1.00),
		ThreeLC(1.75),
	}
}
