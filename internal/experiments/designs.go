// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: it runs the distributed
// training harness once per (design, step-budget) configuration, caches
// results, and prints rows/series in the paper's layout.
package experiments

import (
	"threelc/internal/compress"
	"threelc/internal/train"
)

// The compared designs of §5.1, in Table 1's row order.
var (
	DesignFloat32  = train.Design{Name: "32-bit float", Scheme: compress.SchemeNone}
	DesignInt8     = train.Design{Name: "8-bit int", Scheme: compress.SchemeInt8}
	DesignStoch3   = train.Design{Name: "Stoch 3-value + QE", Scheme: compress.SchemeStoch3QE}
	DesignMQE1bit  = train.Design{Name: "MQE 1-bit int", Scheme: compress.SchemeMQE1Bit}
	DesignSparse25 = train.Design{
		Name:   "25% sparsification",
		Scheme: compress.SchemeTopK,
		Opts:   compress.Options{Fraction: 0.25},
	}
	DesignSparse5 = train.Design{
		Name:   "5% sparsification",
		Scheme: compress.SchemeTopK,
		Opts:   compress.Options{Fraction: 0.05},
	}
	DesignLocal2 = train.Design{
		Name:   "2 local steps",
		Scheme: compress.SchemeLocalSteps,
		Opts:   compress.Options{Interval: 2},
	}
)

// ThreeLC returns the full 3LC design with sparsity multiplier s.
func ThreeLC(s float64) train.Design {
	return train.Design{
		Name:   threeLCName(s),
		Scheme: compress.SchemeThreeLC,
		Opts:   compress.Options{Sparsity: s, ZeroRun: true},
	}
}

// ThreeLCNoZRE returns 3LC without zero-run encoding (Table 2's "No ZRE").
func ThreeLCNoZRE(s float64) train.Design {
	return train.Design{
		Name:   threeLCName(s) + " no ZRE",
		Scheme: compress.SchemeThreeLC,
		Opts:   compress.Options{Sparsity: s, ZeroRun: false},
	}
}

func threeLCName(s float64) string {
	switch s {
	case 1.0:
		return "3LC (s=1.00)"
	case 1.5:
		return "3LC (s=1.50)"
	case 1.75:
		return "3LC (s=1.75)"
	case 1.9:
		return "3LC (s=1.90)"
	}
	return "3LC (s=?)"
}

// Table1Designs is the full row set of Table 1.
func Table1Designs() []train.Design {
	return []train.Design{
		DesignFloat32,
		DesignInt8,
		DesignStoch3,
		DesignMQE1bit,
		DesignSparse25,
		DesignSparse5,
		DesignLocal2,
		ThreeLC(1.00),
		ThreeLC(1.50),
		ThreeLC(1.75),
		ThreeLC(1.90),
	}
}

// OverviewDesigns is the 9-design set of Figures 4-6 (a).
func OverviewDesigns() []train.Design {
	return []train.Design{
		DesignFloat32,
		DesignInt8,
		DesignStoch3,
		DesignMQE1bit,
		DesignSparse25,
		DesignSparse5,
		DesignLocal2,
		ThreeLC(1.00),
		ThreeLC(1.75),
	}
}

// Figure7Designs is the 5-design detail set of Figure 7.
func Figure7Designs() []train.Design {
	return []train.Design{
		DesignFloat32,
		DesignMQE1bit,
		DesignSparse5,
		DesignLocal2,
		ThreeLC(1.00),
	}
}
