package experiments

import (
	"fmt"
	"io"
	"time"

	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/stats"
	"threelc/internal/tensor"
	"threelc/internal/train"
)

// ArchRow compares one architecture's parameter-to-computation profile.
type ArchRow struct {
	Name string
	// Params is the trainable parameter count (bytes on the wire per
	// uncompressed push = 4*Params).
	Params int
	// StepMillis is the measured wall time of one forward+backward pass
	// on a fixed batch.
	StepMillis float64
	// BytesPerComputeMs is push traffic per unit of computation — the
	// quantity §5.2 argues makes ResNet a *harder* (lower-traffic) target
	// for communication reduction than VGG-style networks.
	BytesPerComputeMs float64
}

// ArchitectureContrast reproduces the paper's §5.2 architectural argument:
// "Compared to traditional neural network architectures such as VGG,
// ResNet models typically have small parameter count to computation
// ratios, generating less state change traffic for the same amount of
// communication." It measures both model families on identical input.
func ArchitectureContrast(batch int) []ArchRow {
	resCfg := nn.DefaultMicroResNet()
	vggCfg := nn.DefaultVGGNano()
	models := []struct {
		name  string
		model *nn.Model
	}{
		{"MicroResNet (ResNet-style)", nn.NewMicroResNet(resCfg)},
		{"VGGNano (VGG-style)", nn.NewVGGNano(vggCfg)},
	}

	rng := tensor.NewRNG(99)
	x := tensor.New(batch, 3, 16, 16)
	tensor.FillNormal(x, 1, rng)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % 10
	}

	var rows []ArchRow
	for _, m := range models {
		// Warm up once, then measure a few steps.
		m.model.TrainStep(x, labels)
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			m.model.TrainStep(x, labels)
		}
		ms := float64(time.Since(start).Milliseconds()) / reps
		if ms <= 0 {
			ms = 0.01
		}
		rows = append(rows, ArchRow{
			Name:              m.name,
			Params:            m.model.NumParams(),
			StepMillis:        ms,
			BytesPerComputeMs: float64(4*m.model.NumParams()) / ms,
		})
	}
	return rows
}

// PrintArchitectureContrast renders the comparison.
func PrintArchitectureContrast(w io.Writer, rows []ArchRow) {
	fmt.Fprintln(w, "Architecture contrast (paper §5.2): parameter-to-computation ratio")
	fmt.Fprintf(w, "%-28s %12s %14s %20s\n", "Architecture", "Params", "Step (ms)", "Push bytes per ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12d %14.1f %20.0f\n", r.Name, r.Params, r.StepMillis, r.BytesPerComputeMs)
	}
}

// GradStatsRow records gradient-distribution statistics at one training
// step, linking tensor statistics to achieved compression (package stats).
type GradStatsRow struct {
	Step    int
	Summary stats.Summary
	// QuantZeroFrac is the zero fraction 3-value quantization would
	// produce on the raw gradient at the given sparsity multiplier.
	QuantZeroFrac float64
	// PredictedZRERatio is the analytical zero-run ratio estimate at that
	// zero fraction (iid model; real data is correlated).
	PredictedZRERatio float64
	// MeasuredBits is the recorded compressed push size at that step
	// (bits per state change).
	MeasuredBits float64
}

// GradientStatistics runs 3LC training with a gradient-observation hook
// and correlates per-step gradient statistics with measured compression,
// explaining *why* the ratios in Table 2 come out as they do on this
// workload: compression tracks the zero fraction of the quantized
// gradients, which tracks the gradients' tail weight.
func GradientStatistics(s *Suite, sparsity float64, every int) ([]GradStatsRow, error) {
	if every < 1 {
		every = 1
	}
	steps := s.Opt.StandardSteps
	optCfg := opt.TunedSGDConfig(s.Opt.Workers, steps)
	sampled := make(map[int]GradStatsRow)

	cfg := train.Config{
		Design:         ThreeLC(sparsity),
		Workers:        s.Opt.Workers,
		BatchPerWorker: s.Opt.BatchPerWorker,
		Steps:          steps,
		Data:           s.Opt.Data,
		BuildModel:     s.buildModel(),
		FlatInput:      !s.Opt.UseResNet,
		Net:            netsim.DefaultParams(netsim.Gbps1),
		Optimizer:      &optCfg,
		RecordSteps:    true,
		Seed:           s.Opt.Seed,
		OnGradients: func(step int, params []*nn.Param) {
			if step%every != 0 {
				return
			}
			// Analyze the largest compressible tensor (dominates traffic).
			var biggest *nn.Param
			for _, p := range params {
				if p.NoCompress {
					continue
				}
				if biggest == nil || p.W.Len() > biggest.W.Len() {
					biggest = p
				}
			}
			if biggest == nil {
				return
			}
			z := stats.QuantSparsity(biggest.G, sparsity)
			sampled[step] = GradStatsRow{
				Step:              step,
				Summary:           stats.Summarize(biggest.G),
				QuantZeroFrac:     z,
				PredictedZRERatio: stats.ZeroRunRatioEstimate(z),
			}
		},
	}
	cfg.Net.Workers = s.Opt.Workers
	r, err := train.Run(cfg)
	if err != nil {
		return nil, err
	}
	elems := float64(r.CompressibleElems)
	var rows []GradStatsRow
	for _, sr := range r.StepRecords {
		row, ok := sampled[sr.Step]
		if !ok {
			continue
		}
		row.MeasuredBits = sr.CompPushBytes * 8 / elems
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintGradStats renders the series.
func PrintGradStats(w io.Writer, rows []GradStatsRow, sparsity float64) {
	fmt.Fprintf(w, "Gradient statistics vs compression (3LC s=%.2f, largest tensor)\n", sparsity)
	fmt.Fprintf(w, "%6s %10s %10s %8s %12s %14s %14s\n",
		"step", "std", "max|g|", "kurt", "quant-zeros", "pred-ZRE(x)", "push bits")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %10.2e %10.2e %8.1f %11.1f%% %14.2f %14.3f\n",
			r.Step, r.Summary.Std, r.Summary.MaxAbs, r.Summary.Kurtosis,
			100*r.QuantZeroFrac, r.PredictedZRERatio, r.MeasuredBits)
	}
}
