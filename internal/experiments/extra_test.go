package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestArchitectureContrast(t *testing.T) {
	rows := ArchitectureContrast(4)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	res, vgg := rows[0], rows[1]
	if !strings.Contains(res.Name, "ResNet") || !strings.Contains(vgg.Name, "VGG") {
		t.Fatalf("unexpected row order: %q, %q", res.Name, vgg.Name)
	}
	// The paper's §5.2 claim: VGG-style nets have a much larger
	// parameter-to-computation ratio.
	if vgg.BytesPerComputeMs <= res.BytesPerComputeMs {
		t.Errorf("VGG bytes/ms (%v) should exceed ResNet's (%v)",
			vgg.BytesPerComputeMs, res.BytesPerComputeMs)
	}
	if vgg.Params <= res.Params {
		t.Errorf("VGG params (%d) should exceed ResNet's (%d)", vgg.Params, res.Params)
	}
	var buf bytes.Buffer
	PrintArchitectureContrast(&buf, rows)
	if !strings.Contains(buf.String(), "VGGNano") {
		t.Error("printed output missing VGG row")
	}
}

func TestGradientStatistics(t *testing.T) {
	s := tinySuite()
	rows, err := GradientStatistics(s, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no sampled rows")
	}
	for _, r := range rows {
		if r.QuantZeroFrac < 0 || r.QuantZeroFrac > 1 {
			t.Errorf("step %d: zero frac %v", r.Step, r.QuantZeroFrac)
		}
		if r.PredictedZRERatio < 1 || r.PredictedZRERatio > 14 {
			t.Errorf("step %d: predicted ratio %v outside [1,14]", r.Step, r.PredictedZRERatio)
		}
		if r.MeasuredBits <= 0 || r.MeasuredBits > 1.7 {
			t.Errorf("step %d: measured bits %v", r.Step, r.MeasuredBits)
		}
		if r.Summary.N == 0 {
			t.Errorf("step %d: empty summary", r.Step)
		}
	}
	var buf bytes.Buffer
	PrintGradStats(&buf, rows, 1.0)
	if !strings.Contains(buf.String(), "quant-zeros") {
		t.Error("printed output missing header")
	}
}

func TestCSVWriters(t *testing.T) {
	s := tinySuite()

	t1, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, t1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(t1)+1 {
		t.Errorf("table1 csv has %d lines, want %d", len(lines), len(t1)+1)
	}
	if !strings.HasPrefix(lines[0], "design,speedup_10mbps") {
		t.Errorf("table1 csv header: %q", lines[0])
	}

	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteTable2CSV(&buf, t2); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 6 {
		t.Errorf("table2 csv has %d lines", got)
	}

	curves, err := Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteCurvesCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 4*4+1 {
		t.Errorf("curves csv has %d lines", got)
	}

	series7, err := Figure7(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteSeriesCSV(&buf, series7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "accuracy_pct") {
		t.Error("series csv missing accuracy rows")
	}

	series9, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteBitsCSV(&buf, series9); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "sparsity,step,push_bits") {
		t.Error("bits csv header wrong")
	}
}
