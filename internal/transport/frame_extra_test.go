package transport

import (
	"bytes"
	"testing"
)

// writeCounter counts Write calls to verify frame coalescing.
type writeCounter struct {
	bytes.Buffer
	calls int
}

func (w *writeCounter) Write(p []byte) (int, error) {
	w.calls++
	return w.Buffer.Write(p)
}

// TestWriteFrameSingleWrite pins the coalescing behavior: one frame, one
// Write call — on an unbuffered connection that is one syscall instead of
// the former header+payload pair.
func TestWriteFrameSingleWrite(t *testing.T) {
	var w writeCounter
	payload := make([]byte, 1000)
	if err := WriteFrame(&w, MsgPush, payload); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Errorf("WriteFrame issued %d Write calls, want 1", w.calls)
	}
	typ, got, err := ReadFrame(&w.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgPush || len(got) != len(payload) {
		t.Errorf("round trip: type %d, %d bytes", typ, len(got))
	}
}

// TestWriteFrameLimitMatchesReadFrame checks both directions enforce the
// same bound: a frame WriteFrame accepts must be readable, and a frame one
// byte over the limit must be rejected by both.
func TestWriteFrameLimitMatchesReadFrame(t *testing.T) {
	// Exactly at the limit: payload of MaxFrameBytes-1 encodes to n ==
	// MaxFrameBytes, which ReadFrame accepts.
	var buf bytes.Buffer
	atLimit := make([]byte, MaxFrameBytes-1)
	if err := WriteFrame(&buf, MsgPush, atLimit); err != nil {
		t.Fatalf("frame at limit rejected by WriteFrame: %v", err)
	}
	if _, _, err := ReadFrame(&buf); err != nil {
		t.Fatalf("frame at limit rejected by ReadFrame: %v", err)
	}
	// One byte over: rejected by the writer (and unrepresentable to the
	// reader, which bounds n the same way).
	if err := WriteFrame(&buf, MsgPush, make([]byte, MaxFrameBytes)); err == nil {
		t.Error("oversized frame accepted by WriteFrame")
	}
}

// TestFrameReaderReusesScratch pins the per-connection reuse contract:
// payloads alias one scratch buffer, so a second read overwrites the
// first's bytes (callers must consume before reading again).
func TestFrameReaderReusesScratch(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgPush, []byte{1, 1, 1, 1})
	WriteFrame(&buf, MsgPull, []byte{2, 2, 2, 2})
	fr := NewFrameReader(&buf)
	_, first, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != 1 {
		t.Fatalf("first payload %v", first)
	}
	_, second, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != 2 {
		t.Fatalf("second payload %v", second)
	}
	if &first[0] != &second[0] {
		t.Error("scratch buffer not reused between equal-size frames")
	}
}

func TestParseWireSetIntoReuse(t *testing.T) {
	wires := [][]byte{{1, 2, 3}, nil, {4, 5}}
	enc := AppendWireSet(nil, wires)
	scratch := make([][]byte, 0, 8)
	dec, n, err := ParseWireSetInto(scratch, enc)
	if err != nil || n != len(enc) {
		t.Fatalf("parse: %v, consumed %d of %d", err, n, len(enc))
	}
	if len(dec) != 3 || dec[1] != nil || !bytes.Equal(dec[0], []byte{1, 2, 3}) || !bytes.Equal(dec[2], []byte{4, 5}) {
		t.Fatalf("content: %v", dec)
	}
	if cap(dec) != cap(scratch) {
		t.Error("scratch backing array not reused")
	}
	// A stale longer scratch must not leak old entries.
	stale := [][]byte{{9}, {9}, {9}, {9}}
	enc2 := AppendWireSet(nil, [][]byte{nil, {7}})
	dec2, _, err := ParseWireSetInto(stale, enc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec2) != 2 || dec2[0] != nil || !bytes.Equal(dec2[1], []byte{7}) {
		t.Fatalf("stale scratch leaked: %v", dec2)
	}
}
