// Connection-establishment hooks: every dial and listen point in the
// transport tier is pluggable, which is how the chaos layer
// (internal/chaos) interposes its fault-injecting wrappers without the
// tier knowing — and how tests, TLS shims, or metrics taps would.
package transport

import "net"

// Dialer opens one transport connection to addr. A nil Dialer means
// net.Dial("tcp", addr). ShardClientConfig.Dialer, DialConfig.Dialer,
// and ShardServerConfig.Dialer (the primary→replica link) all accept
// one; chaos.Injector.Dial satisfies the signature.
type Dialer func(addr string) (net.Conn, error)

// dial applies the hook, defaulting to plain TCP.
func (d Dialer) dial(addr string) (net.Conn, error) {
	if d == nil {
		return net.Dial("tcp", addr)
	}
	return d(addr)
}

// ListenWrapper decorates a listener before a server tier consumes it,
// so every accepted connection passes through the wrapper (fault
// injection, TLS, accounting). chaos.Injector.WrapListener satisfies the
// signature. A nil wrapper is the identity.
type ListenWrapper func(net.Listener) net.Listener

// Wrap applies the hook, defaulting to the identity.
func (w ListenWrapper) Wrap(ln net.Listener) net.Listener {
	if w == nil {
		return ln
	}
	return w(ln)
}
