// Frame integrity for the v2 wire: an optional CRC-32C trailer,
// negotiated per connection at hello time through FlagChecksum.
//
// The contract is connection-scoped and self-describing: a client that
// sets FlagChecksum on its hello header appends a 4-byte little-endian
// CRC-32C (Castagnoli) over the frame type byte plus the entire frame
// payload — shard header included — to every frame it sends on that
// connection, and the server answers in kind. Once negotiated, the checksum is REQUIRED both ways: a frame
// arriving without a valid trailer (including one whose flag bit itself
// was corrupted — the CRC covers the flag byte) is rejected, so a
// flipped bit anywhere in a frame becomes a detected error the resilient
// path can retry instead of silent model-state divergence. Clients that
// do not negotiate the flag emit and receive frames byte-identical to
// the pre-checksum wire, and CRC-32C has hardware support on every
// mainstream ISA, which is what keeps the checksummed steady state at
// parity with the plain one.
package transport

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// FlagChecksum marks a header whose frame carries a trailing 4-byte
// CRC-32C over the whole payload (header and body). Negotiated at hello;
// see the package comment above.
const FlagChecksum byte = 1 << 2

// FlagResilient marks a hello from a client that may tear down and
// re-dial this connection mid-run, replaying its in-flight step's push
// (ShardClientConfig.Resilient). It requires FlagChecksum — replay
// without integrity would retransmit garbage — and a server configured
// with ShardServerConfig.Resilient; the server then keeps the worker's
// seat across reconnects, dedupes replayed pushes on the (worker, step)
// identity, and answers missed pulls from the retained last payload.
const FlagResilient byte = 1 << 3

// checksumLen is the CRC-32C trailer size.
const checksumLen = 4

// ErrChecksum marks a frame whose CRC-32C trailer did not verify: the
// payload was corrupted in flight (or truncated past the trailer).
var ErrChecksum = errors.New("transport: frame checksum mismatch")

// castagnoli is the CRC-32C table (iSCSI polynomial), computed once;
// crc32.Checksum against it is allocation-free and hardware-accelerated
// where available.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// typeCRC[t] is the CRC-32C state after folding in the single type byte
// t. Precomputed so the hot path never materializes a one-byte slice —
// an array sliced into crc32.Checksum escapes, and one heap-allocated
// byte per frame each way would break the steady-state zero-alloc gate.
var typeCRC = func() (tab [256]uint32) {
	for t := range tab {
		tab[t] = crc32.Checksum([]byte{byte(t)}, castagnoli)
	}
	return
}()

// frameChecksum computes the CRC-32C over [1B frame type][payload]. The
// type byte lives outside the frame payload on the wire, but it routes
// the payload to a handler — a flipped type bit must fail verification,
// not reinterpret a valid body under the wrong state machine — so it is
// folded in first.
func frameChecksum(t MsgType, payload []byte) uint32 {
	return crc32.Update(typeCRC[byte(t)], castagnoli, payload)
}

// appendChecksum appends the CRC-32C trailer over (t, payload) to
// payload. The caller is responsible for having set FlagChecksum in the
// header already — the flag byte is under the checksum.
func appendChecksum(t MsgType, payload []byte) []byte {
	var b [checksumLen]byte
	le.PutUint32(b[:], frameChecksum(t, payload))
	return append(payload, b[:]...)
}

// verifyChecksum validates payload's CRC-32C trailer against the frame
// type it arrived under and returns the payload with the trailer
// stripped. The returned slice aliases payload.
func verifyChecksum(t MsgType, payload []byte) ([]byte, error) {
	if len(payload) < checksumLen {
		return nil, fmt.Errorf("transport: %d-byte frame cannot carry a checksum trailer: %w", len(payload), ErrChecksum)
	}
	body := payload[:len(payload)-checksumLen]
	if got, want := frameChecksum(t, body), le.Uint32(payload[len(payload)-checksumLen:]); got != want {
		return nil, fmt.Errorf("transport: frame CRC-32C %#x != trailer %#x: %w", got, want, ErrChecksum)
	}
	return body, nil
}

// parseChecksummedFrame is the receive path for a connection that
// negotiated FlagChecksum: verify and strip the trailer, parse the
// header, and require the flag — every frame on such a connection must
// carry both, so corruption anywhere (type and flag bits included)
// surfaces as an error and never as a silently accepted body.
func parseChecksummedFrame(t MsgType, payload []byte) (ShardHeader, []byte, error) {
	body, err := verifyChecksum(t, payload)
	if err != nil {
		return ShardHeader{}, nil, err
	}
	h, rest, err := ParseShardHeader(body)
	if err != nil {
		return ShardHeader{}, nil, err
	}
	if h.Flags&FlagChecksum == 0 {
		return ShardHeader{}, nil, fmt.Errorf("transport: unflagged frame on a checksummed connection")
	}
	return h, rest, nil
}
