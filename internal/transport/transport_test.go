package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, MsgPush, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgPush || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type %d payload %v", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgHello || len(got) != 0 {
		t.Fatalf("empty frame: type %d, %d bytes", typ, len(got))
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgPush, []byte{1, 2, 3})
	raw := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error on truncated frame")
	}
}

func TestFrameBadLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error on oversized length prefix")
	}
	raw = []byte{0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error on zero length")
	}
}

func TestWireSetRoundTrip(t *testing.T) {
	wires := [][]byte{{1, 2, 3}, nil, {}, {4}}
	enc := AppendWireSet(nil, wires)
	dec, n, err := ParseWireSet(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	if len(dec) != 4 {
		t.Fatalf("decoded %d wires", len(dec))
	}
	if !bytes.Equal(dec[0], []byte{1, 2, 3}) || dec[1] != nil || dec[2] != nil || !bytes.Equal(dec[3], []byte{4}) {
		t.Errorf("wire set content mismatch: %v", dec)
	}
}

func TestWireSetTruncation(t *testing.T) {
	enc := AppendWireSet(nil, [][]byte{{1, 2, 3, 4, 5}})
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := ParseWireSet(enc[:cut]); err == nil {
			t.Errorf("no error at truncation %d", cut)
		}
	}
}

// TestTCPTrainingMatchesInProcess runs a short distributed training over
// real loopback TCP and verifies the global model lands exactly where the
// in-process driver puts it.
func TestTCPTrainingMatchesInProcess(t *testing.T) {
	const workers = 3
	const steps = 8
	build := func() *nn.Model { return nn.NewMLP(8, []int{6}, 3, 1) }
	psCfg := ps.Config{
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.5, ZeroRun: true},
		Workers:          workers,
		MinCompressElems: 8,
		Optimizer: opt.SGDConfig{BaseLR: 0.05, FinalLR: 0.01, Momentum: 0.9,
			WeightDecay: 1e-4, Workers: workers, TotalSteps: steps},
	}

	// Deterministic per-worker batches shared by both executions.
	type batch struct {
		x      *tensor.Tensor
		labels []int
	}
	batches := make([][]batch, workers)
	rng := tensor.NewRNG(7)
	for w := 0; w < workers; w++ {
		for s := 0; s < steps; s++ {
			x := tensor.New(4, 8)
			tensor.FillNormal(x, 1, rng)
			batches[w] = append(batches[w], batch{x: x, labels: []int{0, 1, 2, 0}})
		}
	}

	// Reference: in-process execution.
	refGlobal := build()
	refServer := ps.NewServer(refGlobal, psCfg)
	refWorkers := make([]*ps.Worker, workers)
	for w := 0; w < workers; w++ {
		m := build()
		m.CopyParamsFrom(refGlobal)
		refWorkers[w] = ps.NewWorker(w, m, psCfg)
	}
	for s := 0; s < steps; s++ {
		refServer.BeginStep()
		for w := 0; w < workers; w++ {
			refWorkers[w].Model.TrainStep(batches[w][s].x, batches[w][s].labels)
			wires, _ := refWorkers[w].CompressGrads()
			if _, err := refServer.AddPush(w, wires); err != nil {
				t.Fatal(err)
			}
		}
		pull, _, err := refServer.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			if _, err := refWorkers[w].ApplyPull(pull); err != nil {
				t.Fatal(err)
			}
		}
	}

	// TCP execution.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcpGlobal := build()
	tcpServer := NewServer(ln, ps.NewServer(tcpGlobal, psCfg), workers, steps)
	serveErr := make(chan error, 1)
	go func() { serveErr <- tcpServer.Serve() }()

	var wg sync.WaitGroup
	workerErr := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := build()
			m.CopyParamsFrom(tcpGlobal)
			worker := ps.NewWorker(w, m, psCfg)
			client, err := Dial(ln.Addr().String(), w)
			if err != nil {
				workerErr <- err
				return
			}
			defer client.Close()
			for s := 0; s < steps; s++ {
				worker.Model.TrainStep(batches[w][s].x, batches[w][s].labels)
				wires, _ := worker.CompressGrads()
				pull, err := client.PushPull(s, wires)
				if err != nil {
					workerErr <- err
					return
				}
				if _, err := worker.ApplyPull(pull); err != nil {
					workerErr <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(workerErr)
	for err := range workerErr {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}

	// Global models must match exactly: the TCP path moves the same bytes.
	rp, tp := refGlobal.Params(), tcpGlobal.Params()
	for i := range rp {
		if !rp[i].W.Equal(tp[i].W) {
			t.Errorf("parameter %s differs between TCP and in-process runs", rp[i].Name)
		}
	}

	push, pull := tcpServer.TrafficBytes()
	if push == 0 || pull == 0 {
		t.Error("server accounted no traffic")
	}
}

// TestTCPAllCodecsMatchInProcess extends the TCP-vs-in-process
// equivalence gate to every registered codec: the fused kernels behind
// the ternary schemes (and the staged paths behind the rest) must move
// byte-identical wires over real sockets, landing the global model on
// bit-identical weights. The codec list mirrors internal/shard's
// allCodecs, which TestAllCodecsCoverRegistry pins to the registry.
func TestTCPAllCodecsMatchInProcess(t *testing.T) {
	codecs := []struct {
		name string
		s    compress.Scheme
		o    compress.Options
	}{
		{"float32", compress.SchemeNone, compress.Options{}},
		{"int8", compress.SchemeInt8, compress.Options{}},
		{"3lc", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}},
		{"stoch3", compress.SchemeStoch3QE, compress.Options{Seed: 9}},
		{"mqe1bit", compress.SchemeMQE1Bit, compress.Options{}},
		{"topk", compress.SchemeTopK, compress.Options{Fraction: 0.3, Seed: 9}},
		{"localsteps", compress.SchemeLocalSteps, compress.Options{Interval: 2}},
		{"roundrobin", compress.SchemeRoundRobin, compress.Options{Parts: 3}},
		// Entropy-wrapped contexts emit SchemeEntropy wires end to end:
		// the servers' stateless decode path must round-trip them over
		// sockets like any base scheme.
		{"3lc+huffman", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true, Entropy: compress.EntropyHuffman}},
		{"3lc+lz", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true, Entropy: compress.EntropyLZ}},
	}
	covered := map[compress.Scheme]bool{}
	for _, c := range codecs {
		if c.o.Entropy != compress.EntropyOff {
			covered[compress.SchemeEntropy] = true
			continue
		}
		covered[c.s] = true
	}
	for _, s := range compress.RegisteredSchemes() {
		if !covered[s] {
			t.Errorf("registered scheme %v has no TCP-equivalence coverage", s)
		}
	}

	const workers, steps = 2, 4
	build := func() *nn.Model { return nn.NewMLP(8, []int{6}, 3, 1) }
	for _, codec := range codecs {
		t.Run(codec.name, func(t *testing.T) {
			psCfg := ps.Config{
				Scheme:           codec.s,
				Opts:             codec.o,
				Workers:          workers,
				MinCompressElems: 1,
				Parallelism:      1,
				Optimizer:        opt.DefaultSGDConfig(workers, steps),
			}
			type batch struct {
				x      *tensor.Tensor
				labels []int
			}
			batches := make([][]batch, workers)
			rng := tensor.NewRNG(7)
			for w := 0; w < workers; w++ {
				for s := 0; s < steps; s++ {
					x := tensor.New(4, 8)
					tensor.FillNormal(x, 1, rng)
					batches[w] = append(batches[w], batch{x: x, labels: []int{0, 1, 2, 0}})
				}
			}

			// In-process reference.
			refGlobal := build()
			refServer := ps.NewServer(refGlobal, psCfg)
			refWorkers := make([]*ps.Worker, workers)
			for w := 0; w < workers; w++ {
				m := build()
				m.CopyParamsFrom(refGlobal)
				refWorkers[w] = ps.NewWorker(w, m, psCfg)
			}
			for s := 0; s < steps; s++ {
				refServer.BeginStep()
				for w := 0; w < workers; w++ {
					refWorkers[w].Model.TrainStep(batches[w][s].x, batches[w][s].labels)
					wires, _ := refWorkers[w].CompressGrads()
					if _, err := refServer.AddPush(w, wires); err != nil {
						t.Fatal(err)
					}
				}
				pull, _, err := refServer.FinishStep()
				if err != nil {
					t.Fatal(err)
				}
				for w := 0; w < workers; w++ {
					if _, err := refWorkers[w].ApplyPull(pull); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Same workload over loopback TCP.
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			tcpGlobal := build()
			tcpServer := NewServer(ln, ps.NewServer(tcpGlobal, psCfg), workers, steps)
			serveErr := make(chan error, 1)
			go func() { serveErr <- tcpServer.Serve() }()

			var wg sync.WaitGroup
			workerErr := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					m := build()
					m.CopyParamsFrom(tcpGlobal)
					worker := ps.NewWorker(w, m, psCfg)
					client, err := Dial(ln.Addr().String(), w)
					if err != nil {
						workerErr <- err
						return
					}
					defer client.Close()
					for s := 0; s < steps; s++ {
						worker.Model.TrainStep(batches[w][s].x, batches[w][s].labels)
						wires, _ := worker.CompressGrads()
						pull, err := client.PushPull(s, wires)
						if err != nil {
							workerErr <- err
							return
						}
						if _, err := worker.ApplyPull(pull); err != nil {
							workerErr <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(workerErr)
			for err := range workerErr {
				t.Fatal(err)
			}
			if err := <-serveErr; err != nil {
				t.Fatal(err)
			}

			rp, tp := refGlobal.Params(), tcpGlobal.Params()
			for i := range rp {
				if !rp[i].W.Equal(tp[i].W) {
					t.Errorf("parameter %s differs between TCP and in-process runs", rp[i].Name)
				}
			}
		})
	}
}

func TestServerRejectsDuplicateWorkerID(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *nn.Model { return nn.NewMLP(4, []int{3}, 2, 1) }
	psCfg := ps.Config{Scheme: compress.SchemeNone, Workers: 2, MinCompressElems: 4,
		Optimizer: opt.DefaultSGDConfig(2, 1)}
	srv := NewServer(ln, ps.NewServer(build(), psCfg), 2, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c1, err := Dial(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(ln.Addr().String(), 0) // duplicate id
	if err == nil {
		defer c2.Close()
	}
	if err := <-done; err == nil {
		t.Error("server should reject duplicate worker id")
	}
}

func TestClientStepMismatch(t *testing.T) {
	// A worker pushing the wrong step number violates the BSP barrier.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *nn.Model { return nn.NewMLP(4, []int{3}, 2, 1) }
	psCfg := ps.Config{Scheme: compress.SchemeNone, Workers: 1, MinCompressElems: 4,
		Optimizer: opt.DefaultSGDConfig(1, 2)}
	srv := NewServer(ln, ps.NewServer(build(), psCfg), 1, 2)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	client, err := Dial(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	m := build()
	w := ps.NewWorker(0, m, psCfg)
	m.TrainStep(tensor.New(2, 4), []int{0, 1})
	wires, _ := w.CompressGrads()
	if _, err := client.PushPull(5, wires); err == nil {
		// The server kills the connection; PushPull should error either
		// on read or on a later step.
		t.Log("first PushPull returned nil; server error expected instead")
	}
	if err := <-done; err == nil {
		t.Error("server should reject out-of-step push")
	}
}
