// MuxShardServer: one shard's multi-tenant transport endpoint. Where
// ShardServer serves exactly one job, the mux fronts one shard of a
// shared shard.Service: every admitted tenant's workers connect to the
// SAME listener, are grouped by the tenant identity their hello carries
// (FlagTenant extension; an untagged hello addresses the default
// tenant), and each complete group is driven by its own BSP goroutine
// against the tenant's shard.Port — so jobs step independently while the
// shard's DRR scheduler multiplexes their decode work underneath.
//
// Group lifecycle: a tenant's group forms when Port.Workers()
// connections have handshaked; it runs whole-set push/pull steps until
// its workers close their connections (EOF at a step boundary), which is
// the job-complete signal — tenants need no pre-agreed step count.
// Tenant identity is validated against the service registry at hello
// time (unknown tenants and stale epochs are rejected) and against the
// group's wire identity on every subsequent frame.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"threelc/internal/shard"
	"threelc/internal/tenant"
)

// MuxShardServerConfig sizes one shard's multi-tenant endpoint.
type MuxShardServerConfig struct {
	// Shard is this endpoint's shard id within the service tier.
	Shard int
	// Tenants is how many tenant groups Serve hosts before returning.
	// Zero means 1.
	Tenants int
	// Timeouts bounds each frame read and write, exactly as for
	// ShardServer.
	Timeouts Timeouts
}

// MuxShardServer serves one shard of a multi-tenant shard.Service on a
// listener shared by every tenant's workers.
type MuxShardServer struct {
	svc *shard.Service
	cfg MuxShardServerConfig
	ln  net.Listener

	mu        sync.Mutex
	pushBytes int64
	pullBytes int64
}

// NewMuxShardServer wraps svc's shard cfg.Shard to serve cfg.Tenants
// tenant groups on ln.
func NewMuxShardServer(ln net.Listener, svc *shard.Service, cfg MuxShardServerConfig) *MuxShardServer {
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	return &MuxShardServer{svc: svc, cfg: cfg, ln: ln}
}

// TrafficBytes reports the endpoint's total received (push) and sent
// (pull) wire bytes across all tenants.
func (s *MuxShardServer) TrafficBytes() (push, pull int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushBytes, s.pullBytes
}

// muxConn is one handshaked worker connection of one tenant group.
type muxConn struct {
	worker   int
	checksum bool // hello-negotiated CRC-32C frame trailers, both directions
	c        net.Conn
	rw       *bufio.ReadWriter
	fr       *FrameReader
	wires    [][]byte
}

// muxGroup accumulates one tenant's connections until the group is
// complete.
type muxGroup struct {
	port *shard.Port
	// wireTenant/wireEpoch is the identity the group's frames carry on
	// the wire: the admitted (id, epoch) for tagged clients, 0/0 for
	// untagged ones. Every member — and every later frame — must match.
	wireTenant uint32
	wireEpoch  uint32
	conns      []*muxConn
}

// Serve accepts connections, forms tenant groups, and drives each
// complete group's BSP step loop on its own goroutine until the group's
// workers disconnect. It returns once cfg.Tenants groups have finished,
// with their errors joined.
func (s *MuxShardServer) Serve() error {
	groups := make(map[tenant.ID]*muxGroup)
	errs := make([]error, s.cfg.Tenants)
	var wg sync.WaitGroup
	launched := 0
	for launched < s.cfg.Tenants {
		wc, g, err := s.accept(groups)
		if err != nil {
			// A malformed or unauthorized connection is that peer's
			// problem, not the tier's: keep serving the tenants.
			continue
		}
		g.conns = append(g.conns, wc)
		if len(g.conns) < g.port.Workers() {
			continue
		}
		delete(groups, g.port.Tenant().ID)
		conns := g.conns
		sort.Slice(conns, func(i, j int) bool { return conns[i].worker < conns[j].worker })
		slot := launched
		launched++
		wg.Add(1)
		go func(g *muxGroup) {
			defer wg.Done()
			errs[slot] = s.serveTenant(g)
			for _, wc := range g.conns {
				wc.c.Close()
			}
		}(g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// accept handshakes one connection: a v2 hello whose tenant identity
// must resolve in the service registry (untagged = default tenant,
// epoch unchecked — the pre-multi-tenant compatibility contract) and
// whose placement hash must match that tenant's own placement.
func (s *MuxShardServer) accept(groups map[tenant.ID]*muxGroup) (*muxConn, *muxGroup, error) {
	c, err := s.ln.Accept()
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*muxConn, *muxGroup, error) {
		c.Close()
		return nil, nil, err
	}
	rw := newConnRW(c)
	fr := NewFrameReader(rw)
	s.cfg.Timeouts.beforeRead(c)
	t, payload, err := fr.ReadFrame()
	if err != nil {
		return fail(fmt.Errorf("transport: mux shard %d hello: %w", s.cfg.Shard, err))
	}
	if t != MsgShardHello {
		return fail(fmt.Errorf("transport: mux shard %d: expected hello, got type %d", s.cfg.Shard, t))
	}
	cksum := false
	if len(payload) >= 2 && payload[1]&FlagChecksum != 0 {
		// Per-worker checksum negotiation, exactly as on ShardServer: the
		// hello carries (and is validated by) its own trailer.
		if payload, err = verifyChecksum(MsgShardHello, payload); err != nil {
			return fail(fmt.Errorf("transport: mux shard %d hello: %w", s.cfg.Shard, err))
		}
		cksum = true
	}
	h, rest, err := ParseShardHeader(payload)
	if err != nil {
		return fail(err)
	}
	if h.Flags&FlagResilient != 0 {
		// A mux group's lifecycle is its connections: losing one ends the
		// job, there is no seat to keep across reconnects.
		return fail(fmt.Errorf("transport: mux shard %d: resilient clients are not multiplexed", s.cfg.Shard))
	}
	if int(h.Shard) != s.cfg.Shard {
		return fail(fmt.Errorf("transport: hello for shard %d on shard %d", h.Shard, s.cfg.Shard))
	}
	if len(rest) != 4 {
		return fail(fmt.Errorf("transport: shard hello has %d trailing bytes, want 4", len(rest)))
	}
	id := tenant.ID(h.Tenant)
	if h.Flags&FlagTenant != 0 {
		// Tagged hello: the epoch must be the live admission's.
		if _, err := s.svc.Registry().Check(id, tenant.Epoch(h.Epoch)); err != nil {
			return fail(fmt.Errorf("transport: mux shard %d: %w", s.cfg.Shard, err))
		}
	} else if _, err := s.svc.Registry().Get(tenant.Default); err != nil {
		return fail(fmt.Errorf("transport: mux shard %d: %w", s.cfg.Shard, err))
	}
	g, ok := groups[id]
	if !ok {
		port, ok := s.svc.Port(id, s.cfg.Shard)
		if !ok {
			return fail(fmt.Errorf("transport: mux shard %d: tenant %d has no job on this tier", s.cfg.Shard, id))
		}
		g = &muxGroup{port: port, wireTenant: h.Tenant, wireEpoch: h.Epoch}
		groups[id] = g
	}
	if h.Tenant != g.wireTenant || h.Epoch != g.wireEpoch {
		return fail(fmt.Errorf("transport: mux shard %d: tenant %d hello epoch %d differs from group epoch %d",
			s.cfg.Shard, h.Tenant, h.Epoch, g.wireEpoch))
	}
	if hash := le.Uint32(rest); hash != g.port.Hash() {
		return fail(fmt.Errorf("transport: tenant %d worker %d placement hash %#x != server %#x (divergent model layout)",
			id, h.Worker, hash, g.port.Hash()))
	}
	w := int(h.Worker)
	if w < 0 || w >= g.port.Workers() {
		return fail(fmt.Errorf("transport: tenant %d: bad worker id %d", id, w))
	}
	for _, wc := range g.conns {
		if wc.worker == w {
			return fail(fmt.Errorf("transport: tenant %d: duplicate worker id %d", id, w))
		}
	}
	return &muxConn{worker: w, checksum: cksum, c: c, rw: rw, fr: fr}, g, nil
}

// serveTenant drives one complete tenant group's BSP loop: per step,
// read every worker's whole-set push in worker-id order into the
// tenant's lane, hit the Finish barrier, broadcast the pull. A clean
// EOF from worker 0 at the top of a step is the group's job-complete
// signal.
func (s *MuxShardServer) serveTenant(g *muxGroup) error {
	id := g.port.Tenant().ID
	var pullBuf, ckBuf []byte
	for step := 0; ; step++ {
		// Worker 0's frame is read before the step opens so a closed
		// group ends the loop without charging a step.
		h0, body0, eof, err := s.readMuxPush(g, g.conns[0], step)
		if eof {
			return nil
		}
		if err != nil {
			return err
		}
		if err := g.port.Begin(step); err != nil {
			return fmt.Errorf("transport: mux shard %d tenant %d step %d: %w", s.cfg.Shard, id, step, err)
		}
		wires, _, err := ParseWireSetInto(g.conns[0].wires, body0)
		if err != nil {
			return fmt.Errorf("transport: mux shard %d tenant %d worker %d: %w", s.cfg.Shard, id, h0.Worker, err)
		}
		g.conns[0].wires = wires
		if err := g.port.Push(g.conns[0].worker, wires); err != nil {
			return err
		}
		if err := g.port.EndPush(g.conns[0].worker); err != nil {
			return err
		}
		for _, wc := range g.conns[1:] {
			h, body, eof, err := s.readMuxPush(g, wc, step)
			if eof {
				return fmt.Errorf("transport: mux shard %d tenant %d: worker %d closed mid-step %d", s.cfg.Shard, id, wc.worker, step)
			}
			if err != nil {
				return err
			}
			wires, _, err := ParseWireSetInto(wc.wires, body)
			if err != nil {
				return fmt.Errorf("transport: mux shard %d tenant %d worker %d: %w", s.cfg.Shard, id, h.Worker, err)
			}
			wc.wires = wires
			if err := g.port.Push(wc.worker, wires); err != nil {
				return err
			}
			if err := g.port.EndPush(wc.worker); err != nil {
				return err
			}
		}
		pull, _, err := g.port.Finish()
		if err != nil {
			return fmt.Errorf("transport: mux shard %d tenant %d step %d: %w", s.cfg.Shard, id, step, err)
		}
		// Two pull variants at most: the plain payload and — only when
		// some member negotiated integrity — the checksummed one; each
		// worker receives the generation its hello asked for.
		anyPlain, anyCk := false, false
		for _, wc := range g.conns {
			if wc.checksum {
				anyCk = true
			} else {
				anyPlain = true
			}
		}
		if anyPlain {
			pullBuf = AppendShardHeader(pullBuf[:0], ShardHeader{
				Version: ShardWireVersion,
				Shard:   uint16(s.cfg.Shard),
				Step:    uint32(step),
				Tenant:  g.wireTenant,
				Epoch:   g.wireEpoch,
			})
			pullBuf = AppendWireSet(pullBuf, pull)
		}
		if anyCk {
			ckBuf = AppendShardHeader(ckBuf[:0], ShardHeader{
				Version: ShardWireVersion,
				Flags:   FlagChecksum,
				Shard:   uint16(s.cfg.Shard),
				Step:    uint32(step),
				Tenant:  g.wireTenant,
				Epoch:   g.wireEpoch,
			})
			ckBuf = AppendWireSet(ckBuf, pull)
			ckBuf = appendChecksum(MsgShardPull, ckBuf)
		}
		for _, wc := range g.conns {
			out := pullBuf
			if wc.checksum {
				out = ckBuf
			}
			s.cfg.Timeouts.beforeWrite(wc.c)
			if err := WriteFrame(wc.rw, MsgShardPull, out); err != nil {
				return fmt.Errorf("transport: mux shard %d tenant %d step %d pull to worker %d: %w", s.cfg.Shard, id, step, wc.worker, err)
			}
			if err := wc.rw.Flush(); err != nil {
				return fmt.Errorf("transport: mux shard %d tenant %d step %d flush to worker %d: %w", s.cfg.Shard, id, step, wc.worker, err)
			}
			s.mu.Lock()
			s.pullBytes += int64(len(out))
			s.mu.Unlock()
		}
	}
}

// readMuxPush reads and validates one worker's whole-set push frame for
// the given step. A clean EOF before any frame bytes reports eof=true —
// the worker closed at a step boundary.
func (s *MuxShardServer) readMuxPush(g *muxGroup, wc *muxConn, step int) (ShardHeader, []byte, bool, error) {
	id := g.port.Tenant().ID
	s.cfg.Timeouts.beforeRead(wc.c)
	t, payload, err := wc.fr.ReadFrame()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return ShardHeader{}, nil, true, nil
		}
		return ShardHeader{}, nil, false, fmt.Errorf("transport: mux shard %d tenant %d step %d push from worker %d: %w",
			s.cfg.Shard, id, step, wc.worker, err)
	}
	if t != MsgShardPush {
		return ShardHeader{}, nil, false, fmt.Errorf("transport: mux shard %d tenant %d: expected whole-set push, got type %d (streamed pushes are not multiplexed)",
			s.cfg.Shard, id, t)
	}
	var h ShardHeader
	var body []byte
	if wc.checksum {
		h, body, err = parseChecksummedFrame(t, payload)
	} else {
		h, body, err = ParseShardHeader(payload)
	}
	if err != nil {
		return ShardHeader{}, nil, false, err
	}
	if int(h.Shard) != s.cfg.Shard {
		return ShardHeader{}, nil, false, fmt.Errorf("transport: push for shard %d on shard %d", h.Shard, s.cfg.Shard)
	}
	if h.Tenant != g.wireTenant || h.Epoch != g.wireEpoch {
		return ShardHeader{}, nil, false, fmt.Errorf("transport: mux shard %d: push for tenant %d epoch %d on tenant %d epoch %d group",
			s.cfg.Shard, h.Tenant, h.Epoch, g.wireTenant, g.wireEpoch)
	}
	if int(h.Worker) != wc.worker {
		return ShardHeader{}, nil, false, fmt.Errorf("transport: push id %d on worker %d's connection", h.Worker, wc.worker)
	}
	if int(h.Step) != step {
		return ShardHeader{}, nil, false, fmt.Errorf("transport: tenant %d worker %d pushed step %d during step %d (barrier violation)",
			id, h.Worker, h.Step, step)
	}
	s.mu.Lock()
	s.pushBytes += int64(len(payload))
	s.mu.Unlock()
	return h, body, false, nil
}
