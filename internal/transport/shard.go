// Sharded transport (wire format v2): workers hold one connection per
// parameter-server shard and push/pull against all shards concurrently.
// The v2 frames carry a versioned shard-aware header; the v1 frame types
// (MsgHello/MsgPush/MsgPull) are untouched, so existing single-server
// deployments keep working and a 1-shard ShardServer even accepts v1
// clients (see ShardServerConfig.NumShards).
//
//	shard header := [1B version=2][1B flags=0][2B LE shard][4B LE worker][4B LE step]
//	hello2       := header (step field = 0) [4B LE assignment hash]
//	push2        := header [wire set]
//	pull2        := header (worker field = 0) [wire set]
//
// With the entropy stage negotiated (hello2 grows a trailing stage byte,
// see FlagEntropy), whole-set bodies are coded:
//
//	hello2e      := header (step field = 0) [4B LE assignment hash][1B algo]
//	push2e       := header (FlagEntropy) [1B stage id][coded wire set]
//	pull2e       := header (FlagEntropy, worker field = 0) [1B stage id][coded wire set]
//
// The streamed (per-tensor) frames overlap communication with codec work:
// a worker that pushes MsgShardPushTensor frames sends each tensor the
// moment its compressor finishes — the shard begins decode-accumulate on
// tensor i while tensor i+1 is still compressing or in flight — and is
// answered with per-tensor pull frames its decode loop applies while the
// next frame is still being read (double-buffered pull decode):
//
//	pushT := header [4B LE shard-local tensor][tensor wire]
//	pushE := header                                          (end of push)
//	pullT := header (worker field = 0) [4B LE shard-local tensor][tensor wire]
//
// Whole-set and streamed workers interoperate freely on one shard: the
// mode is per worker per step, chosen by the first push frame.
//
// With frame integrity negotiated (FlagChecksum on the hello header, see
// checksum.go), every frame on that connection — hello included — grows
// a trailing [4B LE CRC-32C] over the whole payload, and a resilient
// client (FlagResilient, requires the checksum) may additionally tear
// down and re-dial its connection mid-run, replaying the in-flight
// step's push; the server dedupes replays on the (worker, step) identity
// and re-answers missed pulls from the retained last payload. A client
// that negotiates neither emits and receives the wire byte-identically
// to the pre-checksum format.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"threelc/internal/compress"
	"threelc/internal/entropy"
	"threelc/internal/ps"
	"threelc/internal/shard"
)

// Sharded (v2) frame types. The numbering continues the v1 space so a
// receiver can tell the generations apart from the type byte alone.
const (
	MsgShardHello MsgType = iota + 4
	MsgShardPush
	MsgShardPull
	// MsgShardPushTensor carries one tensor of a worker's push: header +
	// 4-byte shard-local tensor index + that tensor's wire. The shard
	// decode-accumulates it as soon as the frame lands.
	MsgShardPushTensor
	// MsgShardPushEnd terminates a streamed push (header only).
	MsgShardPushEnd
	// MsgShardPullTensor carries one tensor of the shared pull, same
	// layout as MsgShardPushTensor; sent to workers that pushed streamed.
	MsgShardPullTensor
	// MsgReplicaHello opens a primary→replica forwarding connection:
	// header (worker and step zero) + the 4-byte placement hash, exactly
	// like a worker hello but identifying the peer as the primary.
	MsgReplicaHello
	// MsgReplicaPush forwards one worker's whole-set push to the replica.
	// The payload is the worker's original MsgShardPush payload verbatim —
	// shard header (with the worker's id and step, the dedupe identity)
	// plus wire set.
	MsgReplicaPush
	// MsgShardBye is a resilient client's positive end-of-run signal
	// (header + checksum trailer, no body): after applying the final
	// step's pull it tells the server its seat can be retired. A plain
	// EOF is not enough on a resilient connection — the client may have
	// closed because the final pull failed its checksum and be about to
	// reconnect and replay.
	MsgShardBye
)

// ErrShardKilled is returned by ShardServer.Serve when the configured
// KillAtStep fires — the demo/test hook that emulates a shard crash.
var ErrShardKilled = errors.New("transport: shard killed at configured step")

// ShardWireVersion is the current sharded wire-format generation. The
// version byte leads every shard header: an incompatible layout change
// must bump it, and receivers reject versions (and flag bits) they do not
// know instead of misparsing.
const ShardWireVersion = 2

// ShardHeaderLen is the encoded size of a ShardHeader's fixed part; a
// header with flag extensions is longer (see FlagTenant).
const ShardHeaderLen = 12

// FlagTenant marks a header carrying the tenant extension: 8 extra bytes
// — [4B LE tenant id][4B LE tenant epoch] — after the fixed part. An
// untagged header (flag clear) addresses the default tenant at epoch
// zero, which is how pre-multi-tenant clients keep working against a
// tenant-aware endpoint unchanged.
const FlagTenant byte = 1 << 0

// shardTenantExtLen is the FlagTenant extension size.
const shardTenantExtLen = 8

// FlagEntropy marks a push or pull frame whose wire-set body passed
// through the entropy second stage: the bytes after the header are
// [1B stage id][coded wire-set], stage ids mirroring the codec's
// SchemeEntropy wire (0 stored, 1 huffman, 2 lz). The stage is
// negotiated in the v2 hello (a trailing algo byte after the placement
// hash); a client that does not negotiate it — including every
// pre-entropy binary — emits and receives frames byte-identical to the
// pre-entropy wire format, and an entropy-capable server serves both
// kinds of client in the same tier. Streamed per-tensor frames are
// exempt: their payoff is overlap, not bytes, and coding tensor-sized
// fragments would forfeit cross-tensor redundancy anyway.
const FlagEntropy byte = 1 << 1

// Entropy stage ids for FlagEntropy bodies (mirror the codec's
// SchemeEntropy stage ids).
const (
	entropyBodyStored  = 0
	entropyBodyHuffman = 1
	entropyBodyLZ      = 2
)

// ShardHeader addresses one v2 frame: which shard, which worker, which
// step — and, when the tenant flag is set, which job (tenant id + the
// admission epoch that makes stale frames from a retired incarnation
// rejectable). Hello frames reuse the layout with Step zero and append
// the 4-byte placement hash after the header.
type ShardHeader struct {
	Version byte
	Flags   byte
	Shard   uint16
	Worker  uint32
	Step    uint32
	Tenant  uint32 // FlagTenant extension; 0 = default tenant
	Epoch   uint32 // FlagTenant extension; admission epoch
}

// AppendShardHeader appends h in wire order. A nonzero Tenant or Epoch
// turns on FlagTenant and appends the extension, so single-tenant
// callers emit byte-for-byte the pre-multi-tenant header.
func AppendShardHeader(dst []byte, h ShardHeader) []byte {
	if h.Tenant != 0 || h.Epoch != 0 {
		h.Flags |= FlagTenant
	}
	var b [ShardHeaderLen + shardTenantExtLen]byte
	b[0] = h.Version
	b[1] = h.Flags
	le.PutUint16(b[2:], h.Shard)
	le.PutUint32(b[4:], h.Worker)
	le.PutUint32(b[8:], h.Step)
	if h.Flags&FlagTenant == 0 {
		return append(dst, b[:ShardHeaderLen]...)
	}
	le.PutUint32(b[12:], h.Tenant)
	le.PutUint32(b[16:], h.Epoch)
	return append(dst, b[:]...)
}

// ParseShardHeader decodes and validates a shard header, returning the
// remaining payload. Unknown versions and flag bits are errors — the
// forward-compatibility contract that lets the layout evolve behind the
// version byte. A header without FlagTenant parses with Tenant and Epoch
// zero: the default tenant.
func ParseShardHeader(src []byte) (ShardHeader, []byte, error) {
	if len(src) < ShardHeaderLen {
		return ShardHeader{}, nil, fmt.Errorf("transport: short shard header (%d bytes)", len(src))
	}
	h := ShardHeader{
		Version: src[0],
		Flags:   src[1],
		Shard:   le.Uint16(src[2:]),
		Worker:  le.Uint32(src[4:]),
		Step:    le.Uint32(src[8:]),
	}
	if h.Version != ShardWireVersion {
		return ShardHeader{}, nil, fmt.Errorf("transport: unsupported shard wire version %d (have %d)", h.Version, ShardWireVersion)
	}
	if h.Flags&^(FlagTenant|FlagEntropy|FlagChecksum|FlagResilient) != 0 {
		return ShardHeader{}, nil, fmt.Errorf("transport: unknown shard header flags %#x", h.Flags)
	}
	rest := src[ShardHeaderLen:]
	if h.Flags&FlagTenant != 0 {
		if len(rest) < shardTenantExtLen {
			return ShardHeader{}, nil, fmt.Errorf("transport: short tenant header extension (%d bytes)", len(rest))
		}
		h.Tenant = le.Uint32(rest)
		h.Epoch = le.Uint32(rest[4:])
		rest = rest[shardTenantExtLen:]
	}
	return h, rest, nil
}

// appendEntropyBody appends [stage id][coded raw] to dst, falling back
// to the stored stage when coding would not beat raw (bounding the
// stage's overhead at one byte per frame).
func appendEntropyBody(dst []byte, algo compress.EntropyAlgo, raw []byte) []byte {
	base := len(dst)
	switch algo {
	case compress.EntropyHuffman:
		dst = append(dst, entropyBodyHuffman)
		dst = entropy.HuffmanEncodeInto(dst, raw)
	case compress.EntropyLZ:
		dst = append(dst, entropyBodyLZ)
		dst = entropy.LZEncodeInto(dst, raw)
	default:
		dst = append(dst, entropyBodyStored)
		return append(dst, raw...)
	}
	if len(dst)-base-1 >= len(raw) {
		dst = dst[:base]
		dst = append(dst, entropyBodyStored)
		dst = append(dst, raw...)
	}
	return dst
}

// parseEntropyBody recovers the raw body of a FlagEntropy frame, staging
// coded bodies in *buf (recycled by the caller). The returned slice
// aliases src (stored) or *buf (coded).
func parseEntropyBody(src []byte, buf *[]byte) ([]byte, error) {
	if len(src) < 1 {
		return nil, fmt.Errorf("transport: entropy frame body missing stage id")
	}
	switch src[0] {
	case entropyBodyStored:
		return src[1:], nil
	case entropyBodyHuffman:
		b, err := entropy.HuffmanDecodeInto((*buf)[:0], src[1:])
		if err != nil {
			return nil, fmt.Errorf("transport: entropy frame body: %w", err)
		}
		*buf = b
		return b, nil
	case entropyBodyLZ:
		b, err := entropy.LZDecodeInto((*buf)[:0], src[1:])
		if err != nil {
			return nil, fmt.Errorf("transport: entropy frame body: %w", err)
		}
		*buf = b
		return b, nil
	default:
		return nil, fmt.Errorf("transport: unknown entropy stage id %d", src[0])
	}
}

// ShardServerConfig sizes one shard's transport endpoint.
type ShardServerConfig struct {
	// Shard is this server's shard id.
	Shard int
	// NumShards is the deployment's total shard count. When it is 1 (and
	// Shard is 0), the server also accepts v1 clients: a legacy hello is
	// treated as a v2 hello for shard 0 and the worker is answered with
	// v1 pull frames. That keeps the old single-server wire format fully
	// served by the new tier.
	NumShards int
	// Workers is the number of workers to accept.
	Workers int
	// Steps is the BSP step count to run.
	Steps int
	// AssignmentHash is the expected placement checksum
	// (shard.Assignment.Hash); hellos carrying a different hash are
	// rejected so a worker with a divergent model layout fails fast
	// instead of decoding tensors into the wrong slots.
	AssignmentHash uint32
	// Timeouts bounds each frame read and write in the step loop. The
	// read deadline must cover a full compute phase (a BSP push read
	// spans the barrier, not a round trip); zero disables deadlines.
	Timeouts Timeouts
	// ReplicaAddr, when non-empty, names this shard's replica (a
	// ShardReplica endpoint). The primary dials it at Serve start and
	// forwards every validated whole-set push there BEFORE decoding it
	// locally, so the replica replays the identical worker-id-ordered
	// aggregation sequence and its sub-server state stays byte-identical
	// to the primary's. Only v2 whole-set pushes are replicated; streamed
	// and legacy-v1 pushes are rejected on a replicated shard.
	ReplicaAddr string
	// KillAtStep, when > 0, makes Serve abort at the top of that step —
	// the crash-injection hook behind `3lc-net -kill-shard` and the
	// failover tests. The abrupt default closes every connection (peers
	// see EOF); KillSilent leaves them open, so only read deadlines can
	// detect the death. Serve returns ErrShardKilled.
	KillAtStep int
	KillSilent bool
	// Tenant and Epoch pin the job identity this endpoint serves. Every
	// frame's tenant header (absent = default tenant 0, epoch 0) must
	// match, so a client of another job — or of a retired incarnation of
	// this one — is rejected instead of aggregated. A dedicated
	// single-job deployment leaves both zero and the wire format is
	// byte-identical to the pre-multi-tenant one. Multi-job endpoints use
	// MuxShardServer instead.
	Tenant uint32
	Epoch  uint32
	// Resilient accepts FlagResilient clients and keeps their worker
	// seats open across connection failures: malformed handshakes no
	// longer abort Serve, a broken resilient connection is replaced by
	// re-accepting the worker's reconnect, replayed pushes are deduped on
	// the (worker, step) identity, and missed pulls are re-answered from
	// the retained last payload. After the final step the server lingers
	// until every resilient worker confirms with MsgShardBye (or its
	// reconnect window lapses), so a worker whose final pull was
	// corrupted can still recover it. Timeouts.Read bounds each
	// reconnect wait (5s when zero) and must exceed the clients' worst-
	// case retry backoff.
	Resilient bool
	// Dialer overrides how the primary→replica forwarding link is opened
	// (nil: plain TCP) — the chaos/fault-injection hook.
	Dialer Dialer
}

// ShardServer drives one parameter-server shard (a ps sub-server, see
// shard.SubServers) over real connections with BSP semantics.
type ShardServer struct {
	ps  *ps.Server
	cfg ShardServerConfig
	ln  net.Listener

	replicaConn net.Conn          // primary→replica forwarding link (nil: unreplicated)
	replica     *bufio.ReadWriter // buffered writer over replicaConn

	// applied[w] is the last step whose push worker w's seat has
	// aggregated (-1 before the first), the dedupe identity for replayed
	// pushes; ckBuf retains the latest checksummed pull payload so a
	// resilient worker that missed it can be re-answered. Both are only
	// used by the resilient path and only from the Serve goroutine.
	applied []int
	ckBuf   []byte

	mu        sync.Mutex
	pushBytes int64
	pullBytes int64
}

// NewShardServer wraps sub (the ps sub-server owning this shard's
// tensors) to serve cfg.Workers workers for cfg.Steps steps on ln.
func NewShardServer(ln net.Listener, sub *ps.Server, cfg ShardServerConfig) *ShardServer {
	if cfg.NumShards < 1 {
		cfg.NumShards = 1
	}
	return &ShardServer{ps: sub, cfg: cfg, ln: ln}
}

// TrafficBytes reports the shard's total received (push) and sent (pull)
// wire bytes.
func (s *ShardServer) TrafficBytes() (push, pull int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushBytes, s.pullBytes
}

// checkTenant rejects frames that do not carry this endpoint's job
// identity (an untagged frame carries the default identity 0/0).
func (s *ShardServer) checkTenant(h ShardHeader) error {
	if h.Tenant != s.cfg.Tenant || h.Epoch != s.cfg.Epoch {
		return fmt.Errorf("transport: shard %d: frame for tenant %d epoch %d on endpoint serving tenant %d epoch %d",
			s.cfg.Shard, h.Tenant, h.Epoch, s.cfg.Tenant, s.cfg.Epoch)
	}
	return nil
}

type shardWorkerConn struct {
	id        int
	legacy    bool                 // v1 client: answer with v1 pull frames
	streamed  bool                 // this step's push arrived as per-tensor frames
	entropy   compress.EntropyAlgo // hello-negotiated entropy stage (off: pre-entropy wire)
	checksum  bool                 // hello-negotiated CRC-32C frame trailers, both directions
	resilient bool                 // hello-declared reconnect-and-replay client (implies checksum)
	seen      []bool               // per-tensor received flags for one streamed push, recycled
	rw        *bufio.ReadWriter
	fr        *FrameReader
	wires     [][]byte
	entBuf    []byte // decoded entropy push bodies, recycled
	c         net.Conn
}

// newConnRW pairs a connection's buffered reader and writer, exactly as
// the v1 endpoints do.
func newConnRW(c net.Conn) *bufio.ReadWriter {
	return bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c))
}

// Serve accepts the configured workers, runs the step loop, and closes
// the connections. Workers are serviced in worker-id order each step, so
// gradient accumulation order — and therefore the shard's state — is
// deterministic and matches the in-process tier.
func (s *ShardServer) Serve() error {
	conns := make([]*shardWorkerConn, s.cfg.Workers) // indexed by worker id
	silentDeath := false
	defer func() {
		if silentDeath {
			// Emulated silent crash: leave every socket established so the
			// peers' read deadlines are the only failure detector.
			return
		}
		for _, wc := range conns {
			if wc != nil {
				wc.c.Close()
			}
		}
		if s.replicaConn != nil {
			s.replicaConn.Close()
		}
	}()

	if s.cfg.ReplicaAddr != "" {
		if err := s.dialReplica(); err != nil {
			return err
		}
	}

	s.applied = make([]int, s.cfg.Workers)
	for i := range s.applied {
		s.applied[i] = -1
	}

	for have := 0; have < s.cfg.Workers; {
		wc, err := s.accept()
		if err != nil {
			if s.cfg.Resilient && !errors.Is(err, errListener) {
				// A malformed or corrupted handshake is that peer's
				// problem; the worker behind it will retry.
				continue
			}
			return err
		}
		if old := conns[wc.id]; old != nil {
			if !s.cfg.Resilient {
				wc.c.Close()
				return fmt.Errorf("transport: bad or duplicate worker id %d", wc.id)
			}
			old.c.Close() // superseded by the worker's reconnect: latest wins
		} else {
			have++
		}
		conns[wc.id] = wc
	}

	// The shared pull payload is serialized once per step per frame
	// generation (v2 — plain, checksummed, or one coded payload per
	// negotiated entropy stage — and v1 only when a legacy worker is
	// connected) and broadcast to every worker, like the v1 server's
	// per-step pullBuf. Workers that pushed streamed this step are
	// answered with per-tensor pull frames instead, so their decode can
	// start on tensor 0 while tensor 1 is still in flight. The
	// checksummed payload lives on the server (s.ckBuf), NOT in this
	// frame: it is retained across steps so a resilient worker that lost
	// the broadcast can be re-answered during the next step's read phase.
	var v2Buf, v1Buf, tBuf, setBuf []byte
	var entBufs [3][]byte // per-stage coded pull payloads, indexed by EntropyAlgo
	anyLegacy := false
	for _, wc := range conns {
		if wc.legacy {
			anyLegacy = true
		}
	}
	for step := 0; step < s.cfg.Steps; step++ {
		if s.cfg.KillAtStep > 0 && step == s.cfg.KillAtStep {
			silentDeath = s.cfg.KillSilent
			return ErrShardKilled
		}
		s.ps.BeginStep()
		for w := range conns {
			if err := s.readPushFrom(conns, w, step); err != nil {
				return err
			}
		}
		pull, _, err := s.ps.FinishStep()
		if err != nil {
			return err
		}
		anyWhole, anyPlain := false, false
		for _, wc := range conns {
			if !wc.legacy && !wc.streamed {
				anyWhole = true
				if wc.entropy == compress.EntropyOff && !wc.checksum {
					anyPlain = true
				}
			}
		}
		if anyWhole {
			setBuf = AppendWireSet(setBuf[:0], pull)
		}
		if anyPlain {
			v2Buf = AppendShardHeader(v2Buf[:0], ShardHeader{
				Version: ShardWireVersion,
				Shard:   uint16(s.cfg.Shard),
				Step:    uint32(step),
				Tenant:  s.cfg.Tenant,
				Epoch:   s.cfg.Epoch,
			})
			v2Buf = append(v2Buf, setBuf...)
		}
		if anyLegacy {
			v1Buf = append(v1Buf[:0], 0, 0, 0, 0)
			le.PutUint32(v1Buf, uint32(step))
			v1Buf = AppendWireSet(v1Buf, pull)
		}
		var entBuilt [3]bool
		ckBuilt := false
		for w := 0; w < len(conns); w++ {
			wc := conns[w]
			if wc == nil {
				continue // severed during this step; replay re-answers it
			}
			if wc.streamed {
				if err := s.writePullStream(wc, step, pull, &tBuf); err != nil {
					if s.severResilient(conns, w, err) {
						continue
					}
					return err
				}
				continue
			}
			t, payload := MsgShardPull, v2Buf
			switch {
			case wc.legacy:
				t, payload = MsgPull, v1Buf
			case wc.checksum:
				if !ckBuilt {
					s.ckBuf = AppendShardHeader(s.ckBuf[:0], ShardHeader{
						Version: ShardWireVersion,
						Flags:   FlagChecksum,
						Shard:   uint16(s.cfg.Shard),
						Step:    uint32(step),
						Tenant:  s.cfg.Tenant,
						Epoch:   s.cfg.Epoch,
					})
					s.ckBuf = append(s.ckBuf, setBuf...)
					s.ckBuf = appendChecksum(MsgShardPull, s.ckBuf)
					ckBuilt = true
				}
				payload = s.ckBuf
			case wc.entropy != compress.EntropyOff:
				a := wc.entropy
				if !entBuilt[a] {
					entBufs[a] = AppendShardHeader(entBufs[a][:0], ShardHeader{
						Version: ShardWireVersion,
						Flags:   FlagEntropy,
						Shard:   uint16(s.cfg.Shard),
						Step:    uint32(step),
						Tenant:  s.cfg.Tenant,
						Epoch:   s.cfg.Epoch,
					})
					entBufs[a] = appendEntropyBody(entBufs[a], a, setBuf)
					entBuilt[a] = true
				}
				payload = entBufs[a]
			}
			s.cfg.Timeouts.beforeWrite(wc.c)
			err := WriteFrame(wc.rw, t, payload)
			if err == nil {
				err = wc.rw.Flush()
			}
			if err != nil {
				err = fmt.Errorf("transport: shard %d step %d pull to worker %d: %w", s.cfg.Shard, step, wc.id, err)
				if s.severResilient(conns, w, err) {
					continue // the worker reconnects and replays; see readPushFrom
				}
				return err
			}
			s.mu.Lock()
			s.pullBytes += int64(len(payload))
			s.mu.Unlock()
		}
	}
	if s.cfg.Resilient {
		return s.linger(conns)
	}
	return nil
}

// severResilient tears down conns[w] after err if the seat can recover
// through reconnect-and-replay (resilient mode, resilient connection);
// it reports whether the error was absorbed.
func (s *ShardServer) severResilient(conns []*shardWorkerConn, w int, err error) bool {
	wc := conns[w]
	if !s.cfg.Resilient || wc == nil || !wc.resilient {
		return false
	}
	wc.c.Close()
	conns[w] = nil
	return true
}

// reacquireTimeout bounds one wait for a worker's reconnect (and the
// per-worker linger after the last step): the configured read deadline
// when set — it already must exceed a full step, which dominates any
// client backoff — or 5s.
func (s *ShardServer) reacquireTimeout() time.Duration {
	if s.cfg.Timeouts.Read > 0 {
		return s.cfg.Timeouts.Read
	}
	return 5 * time.Second
}

// reacquire accepts connections until worker w's seat is refilled,
// replacing any other worker seats whose reconnects arrive first.
// Handshake failures are tolerated; the wait for w is deadline-bounded
// so a worker that never returns fails the step instead of wedging it.
func (s *ShardServer) reacquire(conns []*shardWorkerConn, w int) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	dl, _ := s.ln.(deadliner)
	if dl != nil {
		dl.SetDeadline(time.Now().Add(s.reacquireTimeout()))
		defer dl.SetDeadline(time.Time{})
	}
	for conns[w] == nil {
		wc, err := s.accept()
		if err != nil {
			if errors.Is(err, errListener) {
				if IsTimeout(err) {
					return fmt.Errorf("transport: shard %d: worker %d did not reconnect within %v: %w",
						s.cfg.Shard, w, s.reacquireTimeout(), err)
				}
				return err
			}
			continue // malformed handshake: keep waiting for the worker
		}
		if !wc.resilient {
			// Only resilient clients may (re)join mid-run: anything else
			// is a stray peer, not a recovering seat.
			wc.c.Close()
			continue
		}
		if old := conns[wc.id]; old != nil {
			old.c.Close()
		}
		conns[wc.id] = wc
	}
	return nil
}

// readPushFrom drives worker w's seat through one step's push in
// resilient terms: reacquire the seat if it is empty, consume the push,
// and on any connection-level failure of a resilient seat, sever it and
// wait for the worker's reconnect-and-replay instead of failing the
// tier.
func (s *ShardServer) readPushFrom(conns []*shardWorkerConn, w, step int) error {
	for {
		if conns[w] == nil {
			if !s.cfg.Resilient {
				return fmt.Errorf("transport: shard %d: worker %d has no connection", s.cfg.Shard, w)
			}
			if err := s.reacquire(conns, w); err != nil {
				return err
			}
		}
		err := s.readPush(conns[w], step)
		if err == nil {
			return nil
		}
		if !s.severResilient(conns, w, err) {
			return err
		}
	}
}

// linger is the resilient end-of-run: every resilient worker must
// confirm with MsgShardBye before its seat retires, replaying the final
// pull to any worker that reconnects for it. A seat whose worker neither
// confirms nor reconnects within the reacquire window is presumed done —
// the only frames a resilient client sends here are byes and replays,
// and a client still missing its pull redials well within the window.
func (s *ShardServer) linger(conns []*shardWorkerConn) error {
	lastStep := s.cfg.Steps - 1
	for w := 0; w < len(conns); w++ {
		for tries := 0; ; tries++ {
			if tries > 16 {
				return fmt.Errorf("transport: shard %d: worker %d cannot settle its final pull", s.cfg.Shard, w)
			}
			wc := conns[w]
			if wc == nil {
				if err := s.reacquire(conns, w); err != nil {
					if IsTimeout(err) {
						break // no reconnect: the worker finished and went away
					}
					return err
				}
				continue
			}
			if !wc.resilient {
				break
			}
			s.cfg.Timeouts.beforeRead(wc.c)
			if s.cfg.Timeouts.Read == 0 {
				wc.c.SetReadDeadline(time.Now().Add(s.reacquireTimeout()))
			}
			t, payload, err := wc.fr.ReadFrame()
			if err != nil {
				// EOF, reset, or timeout: either the worker is done (we
				// treat silence below as done) or it is reconnecting.
				wc.c.Close()
				conns[w] = nil
				if err := s.reacquire(conns, w); err != nil {
					if IsTimeout(err) {
						break
					}
					return err
				}
				continue
			}
			body, err := verifyChecksum(t, payload)
			if err != nil {
				wc.c.Close()
				conns[w] = nil
				continue
			}
			h, _, err := ParseShardHeader(body)
			if err != nil || int(h.Shard) != s.cfg.Shard || s.checkTenant(h) != nil || int(h.Worker) != w {
				wc.c.Close()
				conns[w] = nil
				continue
			}
			switch {
			case t == MsgShardBye:
				// Positive confirmation: the final pull was applied.
			case t == MsgShardPush && int(h.Step) == lastStep && s.applied[w] == lastStep:
				// The worker missed the final pull: replay it and keep the
				// seat open for its bye.
				if err := s.resendRetained(wc); err != nil {
					wc.c.Close()
					conns[w] = nil
				}
				continue
			default:
				return fmt.Errorf("transport: shard %d: unexpected type-%d frame from worker %d after the final step", s.cfg.Shard, t, w)
			}
			break
		}
	}
	return nil
}

// resendRetained re-answers one resilient worker with the retained
// checksummed pull payload of the last finished step.
func (s *ShardServer) resendRetained(wc *shardWorkerConn) error {
	if len(s.ckBuf) == 0 {
		return fmt.Errorf("transport: shard %d: no retained pull to replay to worker %d", s.cfg.Shard, wc.id)
	}
	s.cfg.Timeouts.beforeWrite(wc.c)
	if err := WriteFrame(wc.rw, MsgShardPull, s.ckBuf); err != nil {
		return err
	}
	if err := wc.rw.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	s.pullBytes += int64(len(s.ckBuf))
	s.mu.Unlock()
	return nil
}

// writePullStream answers one streamed worker with per-tensor pull
// frames, flushing after each so the worker's double-buffered decode can
// start on the first tensor while the rest are still being written.
func (s *ShardServer) writePullStream(wc *shardWorkerConn, step int, pull [][]byte, tBuf *[]byte) error {
	var flags byte
	if wc.checksum {
		flags |= FlagChecksum
	}
	sent := int64(0)
	for k, wire := range pull {
		b := AppendShardHeader((*tBuf)[:0], ShardHeader{
			Version: ShardWireVersion,
			Flags:   flags,
			Shard:   uint16(s.cfg.Shard),
			Step:    uint32(step),
			Tenant:  s.cfg.Tenant,
			Epoch:   s.cfg.Epoch,
		})
		var sb [4]byte
		le.PutUint32(sb[:], uint32(k))
		b = append(b, sb[:]...)
		b = append(b, wire...)
		if wc.checksum {
			b = appendChecksum(MsgShardPullTensor, b)
		}
		*tBuf = b
		s.cfg.Timeouts.beforeWrite(wc.c)
		if err := WriteFrame(wc.rw, MsgShardPullTensor, b); err != nil {
			return fmt.Errorf("transport: shard %d step %d pull tensor %d to worker %d: %w", s.cfg.Shard, step, k, wc.id, err)
		}
		if err := wc.rw.Flush(); err != nil {
			return fmt.Errorf("transport: shard %d step %d flush to worker %d: %w", s.cfg.Shard, step, wc.id, err)
		}
		sent += int64(len(b))
	}
	s.mu.Lock()
	s.pullBytes += sent
	s.mu.Unlock()
	return nil
}

// dialReplica opens the primary→replica forwarding link and identifies
// this endpoint as the shard's primary.
func (s *ShardServer) dialReplica() error {
	conn, err := s.cfg.Dialer.dial(s.cfg.ReplicaAddr)
	if err != nil {
		return fmt.Errorf("transport: shard %d dial replica %s: %w", s.cfg.Shard, s.cfg.ReplicaAddr, err)
	}
	s.replicaConn = conn
	s.replica = newConnRW(conn)
	hello := AppendShardHeader(nil, ShardHeader{
		Version: ShardWireVersion,
		Shard:   uint16(s.cfg.Shard),
		Tenant:  s.cfg.Tenant,
		Epoch:   s.cfg.Epoch,
	})
	var hb [4]byte
	le.PutUint32(hb[:], s.cfg.AssignmentHash)
	hello = append(hello, hb[:]...)
	s.cfg.Timeouts.beforeWrite(conn)
	if err := WriteFrame(s.replica, MsgReplicaHello, hello); err != nil {
		return fmt.Errorf("transport: shard %d replica hello: %w", s.cfg.Shard, err)
	}
	if err := s.replica.Flush(); err != nil {
		return fmt.Errorf("transport: shard %d replica hello: %w", s.cfg.Shard, err)
	}
	return nil
}

// forwardPush relays one validated whole-set push payload to the replica
// before it is decoded locally, keeping the replica at least as informed
// as the primary at every instant (a push the primary aggregated but
// never forwarded would be lost with it; the reverse is harmless, since
// the worker replays on failover and the replica dedupes).
func (s *ShardServer) forwardPush(payload []byte) error {
	if s.replica == nil {
		return nil
	}
	s.cfg.Timeouts.beforeWrite(s.replicaConn)
	if err := WriteFrame(s.replica, MsgReplicaPush, payload); err != nil {
		return fmt.Errorf("transport: shard %d forward to replica: %w", s.cfg.Shard, err)
	}
	if err := s.replica.Flush(); err != nil {
		return fmt.Errorf("transport: shard %d forward to replica: %w", s.cfg.Shard, err)
	}
	return nil
}

// errListener tags accept failures of the listener itself (closed,
// deadline), as opposed to a bad handshake on one accepted connection.
// Resilient serving tolerates the latter — a corrupted hello is the
// peer's problem and the worker behind it retries — but a listener
// failure is fatal to the whole tier.
var errListener = errors.New("transport: listener failure")

// accept takes one connection off the listener and handshakes it (v2
// hello, or v1 hello on a single-shard deployment). Listener-level
// failures wrap errListener; handshake failures do not, and the
// connection is closed before returning them.
func (s *ShardServer) accept() (*shardWorkerConn, error) {
	c, err := s.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("%w: shard %d: %w", errListener, s.cfg.Shard, err)
	}
	wc, err := s.handshake(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	return wc, nil
}

// handshake validates one accepted connection's hello and builds its
// worker seat.
func (s *ShardServer) handshake(c net.Conn) (*shardWorkerConn, error) {
	rw := newConnRW(c)
	fr := NewFrameReader(rw)
	// The hello read is deadline-armed too: a connection that never
	// speaks (a prober, a wedged peer) must not block the accept loop —
	// and with it the whole tier's startup — forever.
	s.cfg.Timeouts.beforeRead(c)
	t, payload, err := fr.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("transport: shard %d hello: %w", s.cfg.Shard, err)
	}
	var id int
	var legacy, cksum, resil bool
	var entAlgo compress.EntropyAlgo
	switch t {
	case MsgShardHello:
		if len(payload) >= 2 && payload[1]&FlagChecksum != 0 {
			// Checksum negotiation: the hello itself carries the trailer,
			// and the flag byte is under the CRC, so a hello whose flag
			// bit (or anything else) flipped in flight fails verification
			// here instead of negotiating a corrupted contract. A flag bit
			// that flipped OFF leaves a 4-byte-longer trailing section the
			// length check below rejects.
			if payload, err = verifyChecksum(MsgShardHello, payload); err != nil {
				return nil, fmt.Errorf("transport: shard %d hello: %w", s.cfg.Shard, err)
			}
			cksum = true
		}
		h, rest, err := ParseShardHeader(payload)
		if err != nil {
			return nil, err
		}
		if int(h.Shard) != s.cfg.Shard {
			return nil, fmt.Errorf("transport: hello for shard %d on shard %d", h.Shard, s.cfg.Shard)
		}
		if err := s.checkTenant(h); err != nil {
			return nil, err
		}
		if h.Flags&FlagResilient != 0 {
			if !cksum {
				return nil, fmt.Errorf("transport: resilient hello without frame checksums (replay requires integrity)")
			}
			if !s.cfg.Resilient {
				return nil, fmt.Errorf("transport: shard %d does not accept resilient clients", s.cfg.Shard)
			}
			resil = true
		}
		if cksum && s.cfg.ReplicaAddr != "" {
			// The replica replays raw push payloads; it does not speak the
			// checksummed wire. Resilience and replication are alternative
			// recovery stories, not composable ones (yet).
			return nil, fmt.Errorf("transport: shard %d: checksummed frames are not replicated (drop the checksum or the replica)", s.cfg.Shard)
		}
		if len(rest) != 4 && len(rest) != 5 {
			return nil, fmt.Errorf("transport: shard hello has %d trailing bytes, want 4 (5 with an entropy stage)", len(rest))
		}
		if hash := le.Uint32(rest); hash != s.cfg.AssignmentHash {
			return nil, fmt.Errorf("transport: worker %d placement hash %#x != server %#x (divergent model layout)",
				h.Worker, hash, s.cfg.AssignmentHash)
		}
		if len(rest) == 5 {
			// Entropy-stage negotiation: pushes from this worker may carry
			// FlagEntropy bodies, and its whole-set pulls are coded with
			// the negotiated stage.
			if cksum {
				// One body transform per connection: the entropy stage and
				// the checksum trailer both rewrite the whole-set body
				// path, and layering a CRC over a coded body would hide
				// which stage a corruption hit. Codec-level entropy
				// (SchemeEntropy) composes with checksums fine.
				return nil, fmt.Errorf("transport: shard %d: wire entropy stage is incompatible with frame checksums", s.cfg.Shard)
			}
			switch rest[4] {
			case entropyBodyHuffman:
				entAlgo = compress.EntropyHuffman
			case entropyBodyLZ:
				entAlgo = compress.EntropyLZ
			default:
				return nil, fmt.Errorf("transport: hello requests unknown entropy stage %d", rest[4])
			}
			if s.cfg.ReplicaAddr != "" {
				// The replica replays raw push payloads into its own
				// wire-set parse; keep replicated shards on the plain
				// format rather than teaching the replay path to decode.
				return nil, fmt.Errorf("transport: shard %d: entropy frames are not replicated (drop the entropy stage or the replica)", s.cfg.Shard)
			}
		}
		id = int(h.Worker)
	case MsgHello:
		if s.cfg.NumShards != 1 || s.cfg.Shard != 0 {
			return nil, fmt.Errorf("transport: v1 hello on shard %d of %d (legacy clients need a single-shard tier)",
				s.cfg.Shard, s.cfg.NumShards)
		}
		if len(payload) != 4 {
			return nil, fmt.Errorf("transport: bad v1 hello (%d bytes)", len(payload))
		}
		id = int(le.Uint32(payload))
		legacy = true
	default:
		return nil, fmt.Errorf("transport: expected hello, got type %d", t)
	}
	if id < 0 || id >= s.cfg.Workers {
		return nil, fmt.Errorf("transport: bad worker id %d", id)
	}
	return &shardWorkerConn{id: id, legacy: legacy, entropy: entAlgo, checksum: cksum, resilient: resil, rw: rw, fr: fr, c: c}, nil
}

// readPush consumes one worker's push for the given step into the
// shard's ps sub-server: a single whole-set frame, or — when the worker
// streams — a sequence of per-tensor frames, each decode-accumulated the
// moment it lands, terminated by MsgShardPushEnd. On a resilient seat a
// replay of the PREVIOUS step's push (the worker lost that step's pull
// and reconnected) is answered from the retained pull payload and
// consumed without re-aggregating — the dedupe half of at-most-once
// application — before reading on for the current step's push.
func (s *ShardServer) readPush(wc *shardWorkerConn, step int) error {
	for {
		s.cfg.Timeouts.beforeRead(wc.c)
		t, payload, err := wc.fr.ReadFrame()
		if err != nil {
			return fmt.Errorf("transport: shard %d step %d push from worker %d: %w", s.cfg.Shard, step, wc.id, err)
		}
		wc.streamed = false
		var body []byte
		var id, gotStep int
		switch {
		case (t == MsgShardPushTensor || t == MsgShardPushEnd) && !wc.legacy:
			if s.replica != nil {
				return fmt.Errorf("transport: shard %d: streamed pushes are not replicated (worker %d must push whole-set)", s.cfg.Shard, wc.id)
			}
			if wc.checksum {
				if payload, err = verifyChecksum(t, payload); err != nil {
					return fmt.Errorf("transport: shard %d step %d worker %d: %w", s.cfg.Shard, step, wc.id, err)
				}
			}
			if wc.resilient {
				// The replay/retained-pull machinery covers whole-set
				// rounds only; a resilient worker never streams.
				return fmt.Errorf("transport: shard %d: streamed pushes are not supported on a resilient connection (worker %d)", s.cfg.Shard, wc.id)
			}
			wc.streamed = true
			return s.readPushStream(wc, step, t, payload)
		case t == MsgShardPush && !wc.legacy:
			var h ShardHeader
			var rest []byte
			if wc.checksum {
				h, rest, err = parseChecksummedFrame(t, payload)
			} else {
				h, rest, err = ParseShardHeader(payload)
			}
			if err != nil {
				return err
			}
			if int(h.Shard) != s.cfg.Shard {
				return fmt.Errorf("transport: push for shard %d on shard %d", h.Shard, s.cfg.Shard)
			}
			if err := s.checkTenant(h); err != nil {
				return err
			}
			if h.Flags&FlagEntropy != 0 {
				if wc.checksum {
					return fmt.Errorf("transport: shard %d: entropy push on a checksummed connection (worker %d)", s.cfg.Shard, wc.id)
				}
				if s.replica != nil {
					return fmt.Errorf("transport: shard %d: entropy pushes are not replicated (worker %d must push plain)", s.cfg.Shard, wc.id)
				}
				rest, err = parseEntropyBody(rest, &wc.entBuf)
				if err != nil {
					return fmt.Errorf("transport: shard %d step %d worker %d: %w", s.cfg.Shard, step, wc.id, err)
				}
			}
			id, gotStep, body = int(h.Worker), int(h.Step), rest
		case t == MsgPush && wc.legacy:
			if s.replica != nil {
				return fmt.Errorf("transport: shard %d: legacy v1 pushes are not replicated", s.cfg.Shard)
			}
			if len(payload) < 8 {
				return fmt.Errorf("transport: step %d: short v1 push header", step)
			}
			id, gotStep, body = int(le.Uint32(payload)), int(le.Uint32(payload[4:])), payload[8:]
		default:
			return fmt.Errorf("transport: step %d: expected push, got type %d", step, t)
		}
		if id != wc.id {
			return fmt.Errorf("transport: push id %d on worker %d's connection", id, wc.id)
		}
		if gotStep != step {
			if wc.resilient && gotStep == step-1 && s.applied[wc.id] == step-1 {
				// Replay of an already-aggregated push: the worker never
				// got that step's pull. Re-answer from the retained
				// payload (do NOT re-aggregate) and keep reading — the
				// current step's push follows on this same connection.
				if err := s.resendRetained(wc); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("transport: worker %d pushed step %d during step %d (barrier violation)", id, gotStep, step)
		}
		if err := s.forwardPush(payload); err != nil {
			return err
		}
		wires, _, err := ParseWireSetInto(wc.wires, body)
		if err != nil {
			return fmt.Errorf("transport: shard %d step %d worker %d: %w", s.cfg.Shard, step, id, err)
		}
		wc.wires = wires
		if _, err := s.ps.AddPush(id, wires); err != nil {
			return err
		}
		s.applied[wc.id] = step
		s.mu.Lock()
		s.pushBytes += int64(len(payload))
		s.mu.Unlock()
		return nil
	}
}

// readPushStream consumes a streamed push: the already-read first frame
// (t/payload) and every following frame until MsgShardPushEnd. Each
// tensor wire aliases the connection's frame scratch and is consumed by
// AddPushTensor before the next read — the server never stages the full
// wire set. Workers must send every tensor of the shard (an empty wire
// for non-transmitting schemes), in any order, each exactly once;
// duplicate or missing slots are protocol errors, enforced here so a
// malformed stream can never silently skew the aggregate (the same
// validate-don't-trust stance the decode-add kernels take).
func (s *ShardServer) readPushStream(wc *shardWorkerConn, step int, t MsgType, payload []byte) error {
	want := s.ps.NumTensors()
	if cap(wc.seen) < want {
		wc.seen = make([]bool, want)
	}
	wc.seen = wc.seen[:want]
	for i := range wc.seen {
		wc.seen[i] = false
	}
	tensors := 0
	received := int64(0)
	for {
		h, rest, err := ParseShardHeader(payload)
		if err != nil {
			return err
		}
		if int(h.Shard) != s.cfg.Shard {
			return fmt.Errorf("transport: push for shard %d on shard %d", h.Shard, s.cfg.Shard)
		}
		if err := s.checkTenant(h); err != nil {
			return err
		}
		if int(h.Worker) != wc.id {
			return fmt.Errorf("transport: push id %d on worker %d's connection", h.Worker, wc.id)
		}
		if int(h.Step) != step {
			return fmt.Errorf("transport: worker %d pushed step %d during step %d (barrier violation)", wc.id, h.Step, step)
		}
		received += int64(len(payload))
		if t == MsgShardPushEnd {
			if len(rest) != 0 {
				return fmt.Errorf("transport: push end carries %d trailing bytes", len(rest))
			}
			if tensors != want {
				return fmt.Errorf("transport: shard %d step %d worker %d streamed %d of %d tensors (incomplete push)",
					s.cfg.Shard, step, wc.id, tensors, want)
			}
			_ = s.ps.EndPush() // always nil on a ps.Server
			s.mu.Lock()
			s.pushBytes += received
			s.mu.Unlock()
			return nil
		}
		if len(rest) < 4 {
			return fmt.Errorf("transport: short push tensor frame (%d bytes after header)", len(rest))
		}
		slot := int(le.Uint32(rest))
		if slot < 0 || slot >= want || wc.seen[slot] {
			return fmt.Errorf("transport: shard %d step %d worker %d: bad or duplicate push tensor slot %d",
				s.cfg.Shard, step, wc.id, slot)
		}
		wc.seen[slot] = true
		tensors++
		if err := s.ps.AddPushTensor(wc.id, slot, rest[4:]); err != nil {
			return fmt.Errorf("transport: shard %d step %d worker %d: %w", s.cfg.Shard, step, wc.id, err)
		}
		s.cfg.Timeouts.beforeRead(wc.c)
		t, payload, err = wc.fr.ReadFrame()
		if err != nil {
			return fmt.Errorf("transport: shard %d step %d push stream from worker %d: %w", s.cfg.Shard, step, wc.id, err)
		}
		if t != MsgShardPushTensor && t != MsgShardPushEnd {
			return fmt.Errorf("transport: step %d: expected push tensor or end, got type %d", step, t)
		}
		if wc.checksum {
			if payload, err = verifyChecksum(t, payload); err != nil {
				return fmt.Errorf("transport: shard %d step %d worker %d: %w", s.cfg.Shard, step, wc.id, err)
			}
		}
	}
}

// ShardClientConfig tunes a worker's sharded connections.
type ShardClientConfig struct {
	// Replicas[s], when non-empty, is shard s's replica address. On a
	// push/pull failure against the primary — connection error, EOF, or a
	// read-deadline timeout — the client dials the replica, re-handshakes,
	// and REPLAYS the in-flight step's push; the replica deduplicates on
	// the (worker, step) identity every push frame already carries, so a
	// push the dead primary managed to forward is never double-counted.
	// Subsequent steps use the replica directly. Failover applies to the
	// whole-set PushPull path (streamed pushes are not replicated).
	Replicas []string
	// Timeouts bounds each frame read/write. A read deadline is the
	// failure detector for silently dead shards: without one, only
	// connection-level errors (RST/EOF) trigger failover.
	Timeouts Timeouts
	// Tenant and Epoch tag every frame with the worker's job identity (as
	// admitted by the service tier's registry). Zero values emit the
	// untagged pre-multi-tenant header and address the default tenant.
	Tenant uint32
	Epoch  uint32
	// Entropy negotiates the wire entropy stage for this worker's
	// whole-set push/pull bodies (see FlagEntropy): the hello advertises
	// the stage, pushes are coded with it, and the server codes this
	// worker's pulls the same way. Off emits the pre-entropy wire format
	// byte-for-byte. Incompatible with Replicas (entropy frames are not
	// replicated); streamed per-tensor frames are exempt and stay plain.
	Entropy compress.EntropyAlgo
	// Checksum negotiates CRC-32C frame integrity (see FlagChecksum):
	// every frame both ways — hello, pushes, pulls, streamed tensors —
	// carries a trailing checksum, so corruption anywhere on the path
	// surfaces as an error instead of silently skewing the aggregate.
	// Incompatible with Replicas and with the wire Entropy stage.
	Checksum bool
	// Resilient (implies Checksum) makes push/pull failures recoverable
	// in place: on any error mid-round-trip the client backs off per
	// Retry, re-dials the SAME shard address, re-handshakes with
	// FlagResilient, and replays the in-flight step's push; the server
	// (ShardServerConfig.Resilient) dedupes the replay and re-answers the
	// missed pull from its retained payload. Whole-set rounds only
	// (PushPullStream rejects a resilient client). At Close the client
	// confirms with MsgShardBye so the server can retire its seat.
	Resilient bool
	// Retry is the resilient path's backoff schedule; the zero value is
	// the retry.Policy default (4 attempts, 50ms base, 2s cap, 2x). Each
	// shard's connection draws from a decorrelated jitter stream derived
	// from it.
	Retry RetryPolicy
	// Dialer overrides how shard connections (and reconnects) are opened;
	// nil means plain TCP. The chaos/fault-injection hook.
	Dialer Dialer
}

// ShardClient is a worker's multiplexed view of the sharded tier: one
// connection per shard, pushed to and pulled from concurrently.
type ShardClient struct {
	id    int
	asn   shard.Assignment
	ccfg  ShardClientConfig
	idx   [][]int // per-shard global tensor indices, fixed at dial time
	slot  []int   // global tensor index -> shard-local index
	conns []*shardConn
	pull  [][]byte // reassembled full-model pull set, recycled
	subs  [][][]byte
	errs  []error
}

type shardConn struct {
	shard     int
	addr      string      // primary address, the resilient reconnect target
	policy    RetryPolicy // per-shard decorrelated backoff stream
	c         net.Conn
	rw        *bufio.ReadWriter
	fr        *FrameReader
	onReplica bool // failed over: this conn now points at the replica
	pushBuf   []byte
	pullWires [][]byte
	// pullBufA/B are the two slots of the streamed pull's double buffer,
	// retained across steps so the steady-state receive path stops
	// allocating once the largest tensor wire has been seen.
	pullBufA, pullBufB []byte
	// setBuf/entBuf stage the entropy second stage when negotiated:
	// setBuf holds the plain wire set before coding the push body, entBuf
	// holds the decoded body of a FlagEntropy pull. Both recycle across
	// steps.
	setBuf, entBuf []byte
}

// DialSharded connects to every shard of the tier (addrs[s] is shard s's
// address) and registers as workerID. The placement asn must be the one
// the server tier was built with — typically shard.ForModel on the
// worker's model replica; its hash is verified during the handshake.
func DialSharded(addrs []string, workerID int, asn shard.Assignment) (*ShardClient, error) {
	return DialShardedConfig(addrs, workerID, asn, ShardClientConfig{})
}

// DialShardedConfig is DialSharded with failover replicas and I/O
// deadlines (see ShardClientConfig).
func DialShardedConfig(addrs []string, workerID int, asn shard.Assignment, ccfg ShardClientConfig) (*ShardClient, error) {
	if len(addrs) != asn.NumShards {
		return nil, fmt.Errorf("transport: %d shard addresses for %d shards", len(addrs), asn.NumShards)
	}
	if ccfg.Replicas != nil && len(ccfg.Replicas) != asn.NumShards {
		return nil, fmt.Errorf("transport: %d replica addresses for %d shards", len(ccfg.Replicas), asn.NumShards)
	}
	if ccfg.Entropy != compress.EntropyOff && ccfg.Replicas != nil {
		return nil, fmt.Errorf("transport: entropy stage is incompatible with replica failover (entropy frames are not replicated)")
	}
	if ccfg.Resilient {
		// Replay without integrity would retransmit the very corruption
		// it is recovering from.
		ccfg.Checksum = true
	}
	if ccfg.Checksum && ccfg.Replicas != nil {
		return nil, fmt.Errorf("transport: frame checksums are incompatible with replica failover (checksummed frames are not replicated)")
	}
	if ccfg.Checksum && ccfg.Entropy != compress.EntropyOff {
		return nil, fmt.Errorf("transport: frame checksums are incompatible with the wire entropy stage")
	}
	c := &ShardClient{
		id:   workerID,
		asn:  asn,
		ccfg: ccfg,
		idx:  make([][]int, asn.NumShards),
		pull: make([][]byte, len(asn.ShardOf)),
		subs: make([][][]byte, asn.NumShards),
		errs: make([]error, asn.NumShards),
	}
	c.slot = make([]int, len(asn.ShardOf))
	for s := range c.idx {
		c.idx[s] = asn.Tensors(s)
		c.subs[s] = make([][]byte, len(c.idx[s]))
		for k, gi := range c.idx[s] {
			c.slot[gi] = k
		}
	}
	for s, addr := range addrs {
		sc := &shardConn{shard: s, addr: addr, policy: ccfg.Retry.Stream(uint64(s))}
		if err := c.connect(sc, addr); err != nil {
			c.Close() // closes the successfully-dialed prefix only
			return nil, err
		}
		c.conns = append(c.conns, sc)
	}
	return c, nil
}

// connect dials addr for sc's shard and performs the v2 hello handshake.
// It is used both at dial time (primary) and during failover (replica).
func (c *ShardClient) connect(sc *shardConn, addr string) error {
	conn, err := c.ccfg.Dialer.dial(addr)
	if err != nil {
		return fmt.Errorf("transport: dial shard %d at %s: %w", sc.shard, addr, err)
	}
	sc.c = conn
	sc.rw = newConnRW(conn)
	sc.fr = NewFrameReader(sc.rw)
	var flags byte
	if c.ccfg.Checksum {
		flags |= FlagChecksum
	}
	if c.ccfg.Resilient {
		flags |= FlagResilient
	}
	hello := AppendShardHeader(sc.pushBuf[:0], ShardHeader{
		Version: ShardWireVersion,
		Flags:   flags,
		Shard:   uint16(sc.shard),
		Worker:  uint32(c.id),
		Tenant:  c.ccfg.Tenant,
		Epoch:   c.ccfg.Epoch,
	})
	var hb [4]byte
	le.PutUint32(hb[:], c.asn.Hash())
	hello = append(hello, hb[:]...)
	switch c.ccfg.Entropy {
	case compress.EntropyHuffman:
		hello = append(hello, entropyBodyHuffman)
	case compress.EntropyLZ:
		hello = append(hello, entropyBodyLZ)
	}
	if c.ccfg.Checksum {
		hello = appendChecksum(MsgShardHello, hello)
	}
	sc.pushBuf = hello
	c.ccfg.Timeouts.beforeWrite(conn)
	if err := WriteFrame(sc.rw, MsgShardHello, hello); err != nil {
		conn.Close()
		return err
	}
	if err := sc.rw.Flush(); err != nil {
		conn.Close()
		return err
	}
	return nil
}

// failover retargets sc at its shard's replica after `cause` broke the
// primary connection, or returns cause when no failover is possible (no
// replica configured, or already on the replica).
func (c *ShardClient) failover(sc *shardConn, cause error) error {
	if sc.onReplica || c.ccfg.Replicas == nil || c.ccfg.Replicas[sc.shard] == "" {
		return cause
	}
	sc.c.Close()
	if err := c.connect(sc, c.ccfg.Replicas[sc.shard]); err != nil {
		return errors.Join(cause, err)
	}
	sc.onReplica = true
	return nil
}

// PushPull splits the worker's full-model wire set by placement, pushes
// every shard's slice on its own connection concurrently, waits for all
// shard pulls, and reassembles them into full-model tensor order. The
// returned wires alias per-connection scratch recycled on the next call
// (the same lifetime contract as Client.PushPull).
func (c *ShardClient) PushPull(step int, wires [][]byte) ([][]byte, error) {
	if len(wires) != len(c.asn.ShardOf) {
		return nil, fmt.Errorf("transport: push has %d tensors, placement has %d", len(wires), len(c.asn.ShardOf))
	}
	if len(c.conns) == 1 {
		// Single-shard fast path: no goroutine fan-out, so the steady
		// state stays allocation-free.
		if err := c.pushPullShard(step, 0, c.conns[0], wires); err != nil {
			return nil, err
		}
	} else {
		var wg sync.WaitGroup
		for s, sc := range c.conns {
			wg.Add(1)
			go func(s int, sc *shardConn) {
				defer wg.Done()
				c.errs[s] = c.pushPullShard(step, s, sc, wires)
			}(s, sc)
		}
		wg.Wait()
		for _, err := range c.errs {
			if err != nil {
				return nil, err
			}
		}
	}
	for i := range c.pull {
		c.pull[i] = nil
	}
	for s, sc := range c.conns {
		for k, gi := range c.idx[s] {
			c.pull[gi] = sc.pullWires[k]
		}
	}
	return c.pull, nil
}

// pushPullShard runs one shard's round trip of one step. Recovery is one
// of two stories. A replicated client fails over: reconnect to the
// shard's replica, re-handshake, REPLAY this step's push (the replica
// dedupes on the (worker, step) identity primary forwarding already
// delivered, so the push applies exactly once). A resilient client
// recovers in place: back off per the shard's decorrelated retry stream,
// re-dial the SAME address, re-handshake, and replay — the server kept
// the seat, dedupes the replay, and re-answers the missed pull from its
// retained payload. The attempt budget is the policy's; exhausting it
// surfaces the last error.
func (c *ShardClient) pushPullShard(step, s int, sc *shardConn, wires [][]byte) error {
	err := c.tryPushPull(step, s, sc, wires)
	if err == nil {
		return nil
	}
	if !c.ccfg.Resilient {
		if ferr := c.failover(sc, err); ferr != nil {
			return ferr
		}
		return c.tryPushPull(step, s, sc, wires)
	}
	for attempt := 0; attempt+1 < sc.policy.Attempts(); attempt++ {
		sc.c.Close()
		time.Sleep(sc.policy.Backoff(attempt))
		if derr := c.connect(sc, sc.addr); derr != nil {
			err = derr
			continue
		}
		if err = c.tryPushPull(step, s, sc, wires); err == nil {
			return nil
		}
	}
	return fmt.Errorf("transport: shard %d step %d: retry budget exhausted: %w", s, step, err)
}

// tryPushPull is one push/pull attempt on the current connection.
func (c *ShardClient) tryPushPull(step, s int, sc *shardConn, wires [][]byte) error {
	sub := c.subs[s]
	for k, gi := range c.idx[s] {
		sub[k] = wires[gi]
	}

	var flags byte
	if c.ccfg.Entropy != compress.EntropyOff {
		flags |= FlagEntropy
	}
	if c.ccfg.Checksum {
		flags |= FlagChecksum
	}
	payload := AppendShardHeader(sc.pushBuf[:0], ShardHeader{
		Version: ShardWireVersion,
		Flags:   flags,
		Shard:   uint16(s),
		Worker:  uint32(c.id),
		Step:    uint32(step),
		Tenant:  c.ccfg.Tenant,
		Epoch:   c.ccfg.Epoch,
	})
	if c.ccfg.Entropy != compress.EntropyOff {
		sc.setBuf = AppendWireSet(sc.setBuf[:0], sub)
		payload = appendEntropyBody(payload, c.ccfg.Entropy, sc.setBuf)
	} else {
		payload = AppendWireSet(payload, sub)
	}
	if c.ccfg.Checksum {
		payload = appendChecksum(MsgShardPush, payload)
	}
	sc.pushBuf = payload
	c.ccfg.Timeouts.beforeWrite(sc.c)
	if err := WriteFrame(sc.rw, MsgShardPush, payload); err != nil {
		return fmt.Errorf("transport: shard %d push step %d: %w", s, step, err)
	}
	if err := sc.rw.Flush(); err != nil {
		return err
	}

	c.ccfg.Timeouts.beforeRead(sc.c)
	t, resp, err := sc.fr.ReadFrame()
	if err != nil {
		return fmt.Errorf("transport: shard %d pull step %d: %w", s, step, err)
	}
	if t != MsgShardPull {
		return fmt.Errorf("transport: shard %d: expected pull, got type %d", s, t)
	}
	var h ShardHeader
	var rest []byte
	if c.ccfg.Checksum {
		h, rest, err = parseChecksummedFrame(t, resp)
	} else {
		h, rest, err = ParseShardHeader(resp)
	}
	if err != nil {
		return err
	}
	if int(h.Shard) != s || int(h.Step) != step {
		return fmt.Errorf("transport: pull for shard %d step %d during shard %d step %d", h.Shard, h.Step, s, step)
	}
	if h.Tenant != c.ccfg.Tenant || h.Epoch != c.ccfg.Epoch {
		return fmt.Errorf("transport: pull for tenant %d epoch %d on tenant %d epoch %d client", h.Tenant, h.Epoch, c.ccfg.Tenant, c.ccfg.Epoch)
	}
	if h.Flags&FlagEntropy != 0 {
		if c.ccfg.Entropy == compress.EntropyOff {
			return fmt.Errorf("transport: shard %d sent an entropy-coded pull to a plain client", s)
		}
		rest, err = parseEntropyBody(rest, &sc.entBuf)
		if err != nil {
			return fmt.Errorf("transport: shard %d pull step %d: %w", s, step, err)
		}
	}
	pulls, _, err := ParseWireSetInto(sc.pullWires, rest)
	if err != nil {
		return err
	}
	sc.pullWires = pulls
	return nil
}

// IndexedWire is one tensor's compressed wire tagged with its global
// tensor index, the unit of the streamed push/pull pipeline.
type IndexedWire struct {
	I    int
	Wire []byte
}

// PushPullStream runs one step in streamed mode. Tensors arriving on
// `tensors` (any order — typically straight from a concurrent compressor,
// ps.Worker.CompressGradsStream) are framed and sent to their owning
// shard immediately, so the servers decode-accumulate tensor i while
// tensor i+1 is still compressing or in flight. The caller must send
// every tensor exactly once (an empty Wire for non-transmitting schemes)
// and close the channel; wires must stay valid until the call returns.
//
// The pull comes back as per-tensor frames: apply is invoked once per
// tensor — concurrently across shards, and per shard overlapped with the
// next frame's socket read through a two-slot buffer (double-buffered
// pull decode). apply must be safe for concurrent calls on different
// tensors (ps.Worker.ApplyPullTensor is); its wire argument is valid only
// for the duration of the call.
func (c *ShardClient) PushPullStream(step int, tensors <-chan IndexedWire, apply func(gi int, wire []byte) error) error {
	if c.ccfg.Resilient {
		// Mid-stream replay would need the whole tensor sequence staged;
		// the resilient contract covers whole-set rounds only.
		return fmt.Errorf("transport: streamed push/pull is not supported on a resilient client")
	}
	chans := make([]chan IndexedWire, len(c.conns))
	var wg sync.WaitGroup
	for s, sc := range c.conns {
		chans[s] = make(chan IndexedWire, len(c.idx[s]))
		wg.Add(1)
		go func(s int, sc *shardConn, ch <-chan IndexedWire) {
			defer wg.Done()
			c.errs[s] = c.streamShard(step, s, sc, ch, apply)
		}(s, sc, chans[s])
	}
	for iw := range tensors {
		if iw.I < 0 || iw.I >= len(c.slot) {
			for _, ch := range chans {
				close(ch)
			}
			wg.Wait()
			return fmt.Errorf("transport: streamed tensor index %d out of range", iw.I)
		}
		chans[c.asn.ShardOf[iw.I]] <- iw
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, err := range c.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// streamShard drives one shard connection through a streamed step:
// per-tensor push frames as they arrive, the end-of-push marker, then the
// double-buffered pull decode loop.
func (c *ShardClient) streamShard(step, s int, sc *shardConn, ch <-chan IndexedWire, apply func(gi int, wire []byte) error) error {
	hdr := ShardHeader{
		Version: ShardWireVersion,
		Shard:   uint16(s),
		Worker:  uint32(c.id),
		Step:    uint32(step),
		Tenant:  c.ccfg.Tenant,
		Epoch:   c.ccfg.Epoch,
	}
	if c.ccfg.Checksum {
		hdr.Flags |= FlagChecksum
	}
	for iw := range ch {
		payload := AppendShardHeader(sc.pushBuf[:0], hdr)
		var sb [4]byte
		le.PutUint32(sb[:], uint32(c.slot[iw.I]))
		payload = append(payload, sb[:]...)
		payload = append(payload, iw.Wire...)
		if c.ccfg.Checksum {
			payload = appendChecksum(MsgShardPushTensor, payload)
		}
		sc.pushBuf = payload
		c.ccfg.Timeouts.beforeWrite(sc.c)
		if err := WriteFrame(sc.rw, MsgShardPushTensor, payload); err != nil {
			return fmt.Errorf("transport: shard %d push tensor %d step %d: %w", s, iw.I, step, err)
		}
		// Flush per frame: the point of streaming is that the server sees
		// tensor i before tensor i+1 exists.
		if err := sc.rw.Flush(); err != nil {
			return err
		}
	}
	payload := AppendShardHeader(sc.pushBuf[:0], hdr)
	if c.ccfg.Checksum {
		payload = appendChecksum(MsgShardPushEnd, payload)
	}
	sc.pushBuf = payload
	c.ccfg.Timeouts.beforeWrite(sc.c)
	if err := WriteFrame(sc.rw, MsgShardPushEnd, payload); err != nil {
		return fmt.Errorf("transport: shard %d push end step %d: %w", s, step, err)
	}
	if err := sc.rw.Flush(); err != nil {
		return err
	}

	// Double-buffered pull decode: a reader goroutine copies each frame
	// into one of two recycled slots while this goroutine decode-applies
	// the previous one.
	type pulled struct {
		gi  int
		buf []byte
		err error
	}
	slots := make(chan []byte, 2)
	slots <- sc.pullBufA[:0]
	slots <- sc.pullBufB[:0]
	frames := make(chan pulled, 2)
	go func() {
		defer close(frames)
		seen := make(map[int]bool, len(c.idx[s]))
		for range c.idx[s] {
			c.ccfg.Timeouts.beforeRead(sc.c)
			t, resp, err := sc.fr.ReadFrame()
			if err != nil {
				frames <- pulled{err: fmt.Errorf("transport: shard %d pull step %d: %w", s, step, err)}
				return
			}
			if t != MsgShardPullTensor {
				frames <- pulled{err: fmt.Errorf("transport: shard %d: expected pull tensor, got type %d", s, t)}
				return
			}
			var h ShardHeader
			var rest []byte
			if c.ccfg.Checksum {
				h, rest, err = parseChecksummedFrame(t, resp)
			} else {
				h, rest, err = ParseShardHeader(resp)
			}
			if err != nil {
				frames <- pulled{err: err}
				return
			}
			if int(h.Shard) != s || int(h.Step) != step {
				frames <- pulled{err: fmt.Errorf("transport: pull for shard %d step %d during shard %d step %d", h.Shard, h.Step, s, step)}
				return
			}
			if h.Tenant != c.ccfg.Tenant || h.Epoch != c.ccfg.Epoch {
				frames <- pulled{err: fmt.Errorf("transport: pull for tenant %d epoch %d on tenant %d epoch %d client", h.Tenant, h.Epoch, c.ccfg.Tenant, c.ccfg.Epoch)}
				return
			}
			if len(rest) < 4 {
				frames <- pulled{err: fmt.Errorf("transport: short pull tensor frame")}
				return
			}
			slot := int(le.Uint32(rest))
			if slot < 0 || slot >= len(c.idx[s]) || seen[slot] {
				frames <- pulled{err: fmt.Errorf("transport: bad or duplicate pull tensor slot %d", slot)}
				return
			}
			seen[slot] = true
			buf := <-slots
			buf = append(buf[:0], rest[4:]...)
			frames <- pulled{gi: c.idx[s][slot], buf: buf}
		}
	}()
	var firstErr error
	for p := range frames {
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			continue
		}
		if firstErr == nil {
			if err := apply(p.gi, p.buf); err != nil {
				firstErr = err
			}
		}
		slots <- p.buf
	}
	// Both slots are back in the channel once frames closes; retain them
	// (and their grown capacities) for the next step.
	sc.pullBufA, sc.pullBufB = <-slots, <-slots
	return firstErr
}

// Close terminates all shard connections. A resilient client first
// confirms each shard with MsgShardBye (best-effort): a bare close is
// ambiguous to a resilient server — it cannot tell a finished worker
// from one about to reconnect — so the bye lets it retire the seat
// immediately instead of holding it open for the reacquire window.
func (c *ShardClient) Close() error {
	var first error
	for _, sc := range c.conns {
		if sc.c == nil {
			continue
		}
		if c.ccfg.Resilient {
			bye := AppendShardHeader(sc.pushBuf[:0], ShardHeader{
				Version: ShardWireVersion,
				Flags:   FlagChecksum,
				Shard:   uint16(sc.shard),
				Worker:  uint32(c.id),
				Tenant:  c.ccfg.Tenant,
				Epoch:   c.ccfg.Epoch,
			})
			bye = appendChecksum(MsgShardBye, bye)
			sc.pushBuf = bye
			c.ccfg.Timeouts.beforeWrite(sc.c)
			if WriteFrame(sc.rw, MsgShardBye, bye) == nil {
				sc.rw.Flush()
			}
		}
		if err := sc.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
