package transport

import (
	"bufio"
	"fmt"
	"net"
)

// Client is a worker-side connection to a transport.Server.
type Client struct {
	id        int
	conn      net.Conn
	rw        *bufio.ReadWriter
	fr        *FrameReader
	to        Timeouts
	pushBuf   []byte   // push payload, rebuilt in place each step
	pullWires [][]byte // parsed pull set, slice headers recycled each step
}

// Dial connects to the server at addr and registers as workerID, with no
// I/O deadlines (a dead server blocks forever — see DialTimeout).
func Dial(addr string, workerID int) (*Client, error) {
	return DialTimeout(addr, workerID, Timeouts{})
}

// DialTimeout is Dial with per-operation I/O deadlines: every frame read
// and write on the connection is bounded by `to`, and a silently dead
// server surfaces as a net.Error timeout from PushPull instead of an
// indefinite hang.
func DialTimeout(addr string, workerID int, to Timeouts) (*Client, error) {
	return DialTimeoutDialer(addr, workerID, to, nil)
}

// DialTimeoutDialer is DialTimeout with a pluggable connection opener
// (nil: plain TCP) — the chaos/fault-injection hook for the v1 client.
func DialTimeoutDialer(addr string, workerID int, to Timeouts, d Dialer) (*Client, error) {
	conn, err := d.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		id:   workerID,
		conn: conn,
		to:   to,
		rw:   bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn)),
	}
	c.fr = NewFrameReader(c.rw)
	var hello [4]byte
	le.PutUint32(hello[:], uint32(workerID))
	c.to.beforeWrite(conn)
	if err := WriteFrame(c.rw, MsgHello, hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// PushPull sends this worker's compressed gradient wires for the given
// step and blocks until the server's shared model-delta wires arrive.
// The returned wires alias a connection-owned scratch buffer that is
// recycled on the next PushPull call; consume (decompress) them before
// pushing again, which the BSP step loop does naturally.
func (c *Client) PushPull(step int, wires [][]byte) ([][]byte, error) {
	payload := append(c.pushBuf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	le.PutUint32(payload, uint32(c.id))
	le.PutUint32(payload[4:], uint32(step))
	payload = AppendWireSet(payload, wires)
	c.pushBuf = payload
	c.to.beforeWrite(c.conn)
	if err := WriteFrame(c.rw, MsgPush, payload); err != nil {
		return nil, fmt.Errorf("transport: push step %d: %w", step, err)
	}
	if err := c.rw.Flush(); err != nil {
		return nil, err
	}

	c.to.beforeRead(c.conn)
	t, resp, err := c.fr.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("transport: pull step %d: %w", step, err)
	}
	if t != MsgPull {
		return nil, fmt.Errorf("transport: expected pull, got type %d", t)
	}
	if len(resp) < 4 {
		return nil, fmt.Errorf("transport: short pull header")
	}
	gotStep := int(le.Uint32(resp))
	if gotStep != step {
		return nil, fmt.Errorf("transport: pull for step %d during step %d", gotStep, step)
	}
	pull, _, err := ParseWireSetInto(c.pullWires, resp[4:])
	if err != nil {
		return nil, err
	}
	c.pullWires = pull
	return pull, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
