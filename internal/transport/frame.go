// Package transport runs the parameter-server protocol of package ps over
// a real network (TCP or any net.Conn): workers connect to the server,
// push compressed gradient wires each step, and receive the shared
// compressed model-delta wires back. This is the deployable counterpart
// of the in-process driver in package train — the wire bytes are exactly
// the ones package compress produces, so everything the simulator
// measures also holds on a real link.
//
// Framing is deliberately simple and allocation-light:
//
//	frame  := [4B LE total payload length][1B type][payload]
//	hello  := [4B LE workerID]
//	push   := [4B LE workerID][4B LE step][wire set]
//	pull   := [4B LE step][wire set]
//	wire set := [4B LE tensor count]{[4B LE len][len bytes]}*
//
// A zero-length tensor entry encodes a nil wire (the local-steps scheme's
// non-transmitting step).
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MsgType identifies a frame.
type MsgType byte

// Frame types.
const (
	MsgHello MsgType = iota + 1
	MsgPush
	MsgPull
)

// MaxFrameBytes bounds a single frame (64 MiB) to keep a corrupt or
// malicious length prefix from exhausting memory.
const MaxFrameBytes = 64 << 20

var le = binary.LittleEndian

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	le.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed message.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := le.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return MsgType(buf[0]), buf[1:], nil
}

// AppendWireSet serializes a set of per-tensor wire messages.
func AppendWireSet(dst []byte, wires [][]byte) []byte {
	var n [4]byte
	le.PutUint32(n[:], uint32(len(wires)))
	dst = append(dst, n[:]...)
	for _, w := range wires {
		le.PutUint32(n[:], uint32(len(w)))
		dst = append(dst, n[:]...)
		dst = append(dst, w...)
	}
	return dst
}

// ParseWireSet deserializes a wire set, returning the wires and the number
// of bytes consumed.
func ParseWireSet(src []byte) ([][]byte, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("transport: wire set truncated (no count)")
	}
	count := int(le.Uint32(src))
	if count < 0 || count > 1<<20 {
		return nil, 0, fmt.Errorf("transport: implausible tensor count %d", count)
	}
	off := 4
	wires := make([][]byte, count)
	for i := 0; i < count; i++ {
		if len(src) < off+4 {
			return nil, 0, fmt.Errorf("transport: wire set truncated at tensor %d", i)
		}
		l := int(le.Uint32(src[off:]))
		off += 4
		if len(src) < off+l {
			return nil, 0, fmt.Errorf("transport: tensor %d body truncated (%d of %d bytes)", i, len(src)-off, l)
		}
		if l > 0 {
			wires[i] = src[off : off+l]
		}
		off += l
	}
	return wires, off, nil
}
