// Package transport runs the parameter-server protocol of package ps over
// a real network (TCP or any net.Conn): workers connect to the server,
// push compressed gradient wires each step, and receive the shared
// compressed model-delta wires back. This is the deployable counterpart
// of the in-process driver in package train — the wire bytes are exactly
// the ones package compress produces, so everything the simulator
// measures also holds on a real link.
//
// Framing is deliberately simple and allocation-free in steady state:
//
//	frame  := [4B LE total payload length][1B type][payload]
//	hello  := [4B LE workerID]
//	push   := [4B LE workerID][4B LE step][wire set]
//	pull   := [4B LE step][wire set]
//	wire set := [4B LE tensor count]{[4B LE len][len bytes]}*
//
// A zero-length tensor entry encodes a nil wire (the local-steps scheme's
// non-transmitting step). WriteFrame coalesces header and payload into one
// buffered write (one syscall on an unbuffered conn), and FrameReader
// reuses a per-connection scratch buffer so the receive path stops
// allocating once the largest frame size has been seen.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MsgType identifies a frame.
type MsgType byte

// Frame types.
const (
	MsgHello MsgType = iota + 1
	MsgPush
	MsgPull
)

// MaxFrameBytes bounds a single frame (64 MiB) to keep a corrupt or
// malicious length prefix from exhausting memory.
const MaxFrameBytes = 64 << 20

var le = binary.LittleEndian

// framePool recycles coalesced write buffers across WriteFrame calls.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledFrame caps the capacity returned to framePool: a frame can be
// up to MaxFrameBytes (64 MiB), and pooling such a buffer would pin it
// until the next GC pool drain. Oversized buffers are simply dropped.
const maxPooledFrame = 1 << 20

// WriteFrame writes one framed message. The 4-byte length prefix, the type
// byte, and the payload are coalesced into a single pooled buffer and
// issued as ONE Write call — on an unbuffered net.Conn that is one syscall
// and one TCP segment boundary instead of two, and on a bufio.Writer it
// avoids the double copy-in. The length check is definitionally the one
// ReadFrame enforces: the encoded length n = 1+len(payload) must satisfy
// 0 < n <= MaxFrameBytes, so every frame WriteFrame accepts is a frame
// ReadFrame accepts, and vice versa.
//
//3lc:noalloc
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	if 5+n > maxPooledFrame {
		return writeFrameLarge(w, t, payload, n)
	}
	bp := framePool.Get().(*[]byte)
	buf := (*bp)[:0]
	// The header bytes are appended inline rather than staged in a local
	// array: an array sliced into an io.Writer argument escapes, and one
	// heap-allocated header per frame is exactly the per-step garbage the
	// steady-state zero-alloc gate forbids.
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24), byte(t))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

// writeFrameLarge streams a frame too big to coalesce through the pool:
// copying a multi-MiB payload would cost more than it saves (and the
// buffer would be too big to pool), so the header and payload go out as
// two writes, which a buffered writer still coalesces and an unbuffered
// one streams in two syscalls — negligible at this size.
//
//3lc:noalloc
func writeFrameLarge(w io.Writer, t MsgType, payload []byte, n int) error {
	var hdr [5]byte
	le.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed message into a fresh buffer. Connection loops
// should prefer FrameReader, which recycles its buffer across frames.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var fr FrameReader
	fr.r = r
	return fr.ReadFrame()
}

// FrameReader reads framed messages from one connection, reusing a single
// scratch buffer: after the first few steps of a training run the receive
// path performs zero allocations. The payload returned by ReadFrame
// aliases the scratch buffer and is valid only until the next ReadFrame
// call; callers that need the bytes longer must copy them.
type FrameReader struct {
	r   io.Reader
	buf []byte
	// hdr is the length-prefix scratch. A function-local array sliced
	// into io.ReadFull escapes and would cost one heap allocation per
	// frame; a field on the (already heap-resident) reader does not.
	hdr [4]byte
}

// NewFrameReader wraps r (typically the buffered read side of a
// connection).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadFrame reads one framed message. The returned payload is valid until
// the next call.
//
//3lc:noalloc
//3lc:decode
func (fr *FrameReader) ReadFrame() (MsgType, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := le.Uint32(fr.hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	if cap(fr.buf) < int(n) {
		//3lc:allow noalloc grow-once scratch; steady state reuses fr.buf
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return 0, nil, err
	}
	//3lc:allow nopanic n >= 1 enforced above and buf is fr.buf[:n]
	return MsgType(buf[0]), buf[1:], nil
}

// AppendWireSet serializes a set of per-tensor wire messages.
//
//3lc:noalloc
func AppendWireSet(dst []byte, wires [][]byte) []byte {
	var n [4]byte
	le.PutUint32(n[:], uint32(len(wires)))
	dst = append(dst, n[:]...)
	for _, w := range wires {
		le.PutUint32(n[:], uint32(len(w)))
		dst = append(dst, n[:]...)
		dst = append(dst, w...)
	}
	return dst
}

// ParseWireSet deserializes a wire set, returning the wires and the number
// of bytes consumed.
//
//3lc:decode
func ParseWireSet(src []byte) ([][]byte, int, error) {
	return ParseWireSetInto(nil, src)
}

// ParseWireSetInto deserializes a wire set into dst's backing storage
// (grown only when the tensor count exceeds its capacity), so a
// connection loop parsing one wire set per step reuses the same slice
// header array. The returned wires alias src.
//
//3lc:noalloc
//3lc:decode
func ParseWireSetInto(dst [][]byte, src []byte) ([][]byte, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("transport: wire set truncated (no count)")
	}
	count := int(le.Uint32(src))
	if count < 0 || count > 1<<20 {
		return nil, 0, fmt.Errorf("transport: implausible tensor count %d", count)
	}
	off := 4
	var wires [][]byte
	if cap(dst) >= count {
		wires = dst[:count]
	} else {
		//3lc:allow noalloc grow path; steady state reuses dst's header array
		wires = make([][]byte, count)
	}
	for i := range wires {
		wires[i] = nil
		if len(src) < off+4 {
			return nil, 0, fmt.Errorf("transport: wire set truncated at tensor %d", i)
		}
		l := int(le.Uint32(src[off:]))
		off += 4
		if len(src) < off+l {
			return nil, 0, fmt.Errorf("transport: tensor %d body truncated (%d of %d bytes)", i, len(src)-off, l)
		}
		if l > 0 {
			wires[i] = src[off : off+l]
		}
		off += l
	}
	return wires, off, nil
}
