package transport

import (
	"bytes"
	"io"
	"testing"
)

// FuzzParseWireSet feeds arbitrary bytes to the wire-set parser: it must
// never panic, and anything it accepts must re-serialize to exactly the
// bytes it consumed (parse∘append = identity on the accepted prefix).
func FuzzParseWireSet(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendWireSet(nil, [][]byte{{1, 2, 3}, nil, {}, {0xff}}))
	f.Add(AppendWireSet(nil, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		wires, n, err := ParseWireSetInto(nil, data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendWireSet(nil, wires)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-serialization differs: %x vs %x", re, data[:n])
		}
	})
}

// FuzzShardHeader checks the versioned shard header parser on arbitrary
// input: no panics, and accepted headers round-trip byte-exactly — the
// property that keeps the v2 wire format stable as it evolves behind the
// version byte.
func FuzzShardHeader(f *testing.F) {
	f.Add(AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Shard: 3, Worker: 7, Step: 11}))
	f.Add(AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Flags: FlagChecksum | FlagResilient, Worker: 1, Step: 2}))
	f.Add(AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Tenant: 5, Epoch: 9}))
	f.Add([]byte{ShardWireVersion, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, ShardHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rest, err := ParseShardHeader(data)
		if err != nil {
			return
		}
		if h.Version != ShardWireVersion {
			t.Fatalf("parser accepted version %d", h.Version)
		}
		if h.Flags&^(FlagTenant|FlagEntropy|FlagChecksum|FlagResilient) != 0 {
			t.Fatalf("parser accepted unknown flags %#x", h.Flags)
		}
		consumed := len(data) - len(rest)
		re := AppendShardHeader(nil, h)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("header re-serialization differs: %x vs %x", re, data[:consumed])
		}
	})
}

// FuzzFrameReader streams arbitrary bytes through the length-prefixed
// frame reader: no panics, no frame larger than the cap, and every
// well-formed frame written by WriteFrame must read back intact when the
// fuzzer happens to generate one (seeded explicitly).
func FuzzFrameReader(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, MsgPush, []byte("hello world"))
	_ = WriteFrame(&seed, MsgShardPush, AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion}))
	f.Add(seed.Bytes())
	f.Add([]byte{1, 0, 0, 0, byte(MsgHello)})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			typ, payload, err := fr.ReadFrame()
			if err != nil {
				return // io.EOF, truncation, or bad length — all fine
			}
			if 1+len(payload) > MaxFrameBytes {
				t.Fatalf("frame of %d bytes exceeds cap", 1+len(payload))
			}
			// A frame that read back must round-trip through WriteFrame.
			var out bytes.Buffer
			if err := WriteFrame(&out, typ, payload); err != nil {
				t.Fatalf("WriteFrame rejected a frame ReadFrame produced: %v", err)
			}
			rt := NewFrameReader(bytes.NewReader(out.Bytes()))
			typ2, payload2, err := rt.ReadFrame()
			if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
				t.Fatalf("frame did not round-trip: %v", err)
			}
		}
	})
}

// FuzzChecksummedFrame is the wire-integrity gate: the checksummed-frame
// parser must never panic on arbitrary bytes, must round-trip every
// well-formed frame, and — the property the chaos soak leans on — must
// reject EVERY single-bit corruption of a valid frame, type byte and
// flag bits included. A corruption that parsed cleanly would aggregate
// garbage into the model instead of triggering a replay.
func FuzzChecksummedFrame(f *testing.F) {
	f.Add(byte(MsgShardPush), []byte("wire payload"), uint16(3))
	f.Add(byte(MsgShardPull), []byte{}, uint16(0))
	f.Add(byte(MsgShardHello), []byte{0xff, 0x00, 0xff}, uint16(97))
	f.Fuzz(func(t *testing.T, typ byte, body []byte, bit uint16) {
		// Arbitrary bytes: no panics, and anything accepted must carry the
		// checksum flag (an unflagged frame on a checksummed connection is
		// a protocol violation even when its trailer happens to verify).
		if h, _, err := parseChecksummedFrame(MsgType(typ), body); err == nil {
			if h.Flags&FlagChecksum == 0 {
				t.Fatalf("accepted frame without FlagChecksum (flags %#x)", h.Flags)
			}
		}

		// A well-formed frame round-trips exactly.
		hdr := ShardHeader{Version: ShardWireVersion, Flags: FlagChecksum, Shard: 1, Worker: 2, Step: 7}
		frame := appendChecksum(MsgType(typ), append(AppendShardHeader(nil, hdr), body...))
		h, rest, err := parseChecksummedFrame(MsgType(typ), frame)
		if err != nil {
			t.Fatalf("well-formed checksummed frame rejected: %v", err)
		}
		if h != hdr || !bytes.Equal(rest, body) {
			t.Fatalf("frame did not round-trip: header %+v body %x", h, rest)
		}

		// Flip one bit anywhere in [type byte][frame]: never accepted.
		n := uint16(8 * (1 + len(frame)))
		bit %= n
		typ2 := typ
		frame2 := append([]byte(nil), frame...)
		if bit < 8 {
			typ2 ^= 1 << bit
		} else {
			frame2[(bit-8)/8] ^= 1 << ((bit - 8) % 8)
		}
		if _, _, err := parseChecksummedFrame(MsgType(typ2), frame2); err == nil {
			t.Fatalf("single-bit corruption at bit %d of %d was accepted", bit, n)
		}
	})
}

// TestFrameReaderStopsAtEOF anchors the fuzz harness's termination
// assumption: a reader over a finite stream always ends in an error.
func TestFrameReaderStopsAtEOF(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(nil))
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
