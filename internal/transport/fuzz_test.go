package transport

import (
	"bytes"
	"io"
	"testing"
)

// FuzzParseWireSet feeds arbitrary bytes to the wire-set parser: it must
// never panic, and anything it accepts must re-serialize to exactly the
// bytes it consumed (parse∘append = identity on the accepted prefix).
func FuzzParseWireSet(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendWireSet(nil, [][]byte{{1, 2, 3}, nil, {}, {0xff}}))
	f.Add(AppendWireSet(nil, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		wires, n, err := ParseWireSetInto(nil, data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendWireSet(nil, wires)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-serialization differs: %x vs %x", re, data[:n])
		}
	})
}

// FuzzShardHeader checks the versioned shard header parser on arbitrary
// input: no panics, and accepted headers round-trip byte-exactly — the
// property that keeps the v2 wire format stable as it evolves behind the
// version byte.
func FuzzShardHeader(f *testing.F) {
	f.Add(AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Shard: 3, Worker: 7, Step: 11}))
	f.Add([]byte{ShardWireVersion, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, ShardHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rest, err := ParseShardHeader(data)
		if err != nil {
			return
		}
		if h.Version != ShardWireVersion || h.Flags != 0 {
			t.Fatalf("parser accepted version %d flags %#x", h.Version, h.Flags)
		}
		if len(rest) != len(data)-ShardHeaderLen {
			t.Fatalf("rest %d bytes of %d input", len(rest), len(data))
		}
		re := AppendShardHeader(nil, h)
		if !bytes.Equal(re, data[:ShardHeaderLen]) {
			t.Fatalf("header re-serialization differs: %x vs %x", re, data[:ShardHeaderLen])
		}
	})
}

// FuzzFrameReader streams arbitrary bytes through the length-prefixed
// frame reader: no panics, no frame larger than the cap, and every
// well-formed frame written by WriteFrame must read back intact when the
// fuzzer happens to generate one (seeded explicitly).
func FuzzFrameReader(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, MsgPush, []byte("hello world"))
	_ = WriteFrame(&seed, MsgShardPush, AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion}))
	f.Add(seed.Bytes())
	f.Add([]byte{1, 0, 0, 0, byte(MsgHello)})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			typ, payload, err := fr.ReadFrame()
			if err != nil {
				return // io.EOF, truncation, or bad length — all fine
			}
			if 1+len(payload) > MaxFrameBytes {
				t.Fatalf("frame of %d bytes exceeds cap", 1+len(payload))
			}
			// A frame that read back must round-trip through WriteFrame.
			var out bytes.Buffer
			if err := WriteFrame(&out, typ, payload); err != nil {
				t.Fatalf("WriteFrame rejected a frame ReadFrame produced: %v", err)
			}
			rt := NewFrameReader(bytes.NewReader(out.Bytes()))
			typ2, payload2, err := rt.ReadFrame()
			if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
				t.Fatalf("frame did not round-trip: %v", err)
			}
		}
	})
}

// TestFrameReaderStopsAtEOF anchors the fuzz harness's termination
// assumption: a reader over a finite stream always ends in an error.
func TestFrameReaderStopsAtEOF(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(nil))
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
