package transport

import (
	"net"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/shard"
	"threelc/internal/tensor"
)

// benchWirePushPull measures one full push/pull round trip over a real
// loopback TCP shard connection — worker compress, frame write, server
// decode+aggregate+update, pull frame, worker apply — with every buffer
// recycled. The checksum variant adds CRC-32C cover on both directions;
// the benchcheck gate holds it within tolerance of the plain wire at
// 0 allocs/op, which is the whole point: integrity must be free enough
// to leave on.
func benchWirePushPull(b *testing.B, checksum bool) {
	cfg := ps.Config{
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.75, ZeroRun: true},
		Workers:          1,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(1, 1024),
	}
	global := nn.NewMLP(784, []int{256}, 10, 7)
	asn := shard.ForModel(global, 1)
	subs, err := shard.SubServers(global, cfg, asn)
	if err != nil {
		b.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewShardServer(ln, subs[0], ShardServerConfig{
		NumShards:      1,
		Workers:        1,
		Steps:          1 << 30, // outlives any b.N; the server dies with the client
		AssignmentHash: asn.Hash(),
	})
	go srv.Serve()

	cl, err := DialShardedConfig([]string{ln.Addr().String()}, 0, asn,
		ShardClientConfig{Checksum: checksum})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		cl.Close()
		ln.Close()
	}()

	m := nn.NewMLP(784, []int{256}, 10, 7)
	m.CopyParamsFrom(global)
	wk := ps.NewWorker(0, m, cfg)
	rng := tensor.NewRNG(31)
	for _, p := range wk.Model.Params() {
		tensor.FillNormal(p.G, 0.01, rng)
	}

	step := 0
	roundTrip := func() {
		wires, _ := wk.CompressGrads()
		pull, err := cl.PushPull(step, wires)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wk.ApplyPull(pull); err != nil {
			b.Fatal(err)
		}
		step++
	}
	// Warm up buffer capacities on both ends of the wire.
	for i := 0; i < 3; i++ {
		roundTrip()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
	b.StopTimer()
}

func BenchmarkSteadyStatePushPullWire(b *testing.B)         { benchWirePushPull(b, false) }
func BenchmarkSteadyStatePushPullWireChecksum(b *testing.B) { benchWirePushPull(b, true) }
