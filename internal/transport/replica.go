// ShardReplica: the standby half of a replicated parameter-server shard.
//
// During normal operation the primary (a ShardServer with ReplicaAddr
// set) forwards every validated worker push over a single upstream
// connection; the replica buffers each step's pushes until all Workers
// have arrived, then applies them to its own ps sub-server in worker-id
// order — the exact aggregation sequence the primary and the in-process
// tier use — so its optimizer state and weights remain byte-identical to
// the primary's at every step boundary.
//
// When the primary dies, workers fail over (ShardClientConfig.Replicas):
// each reconnects here with the normal v2 hello and replays its in-flight
// step's push. Replays are deduplicated on the (tenant, worker, step)
// identity every push frame carries: a push the primary managed to
// forward before dying is recognized and not applied twice, a worker
// whose step the replica has already completed (the primary died between
// forwarding the last push and broadcasting pulls) is answered
// immediately from the retained last pull, and a frame from another
// tenant — or a stale epoch of this one — is rejected outright rather
// than mistaken for a replay of a same-numbered worker's push. From then
// on the replica serves the remaining steps exactly like a primary.
package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"threelc/internal/ps"
)

// ShardReplica serves one shard's replica endpoint.
type ShardReplica struct {
	ps  *ps.Server
	cfg ShardServerConfig
	ln  net.Listener

	mu        sync.Mutex
	pushBytes int64
	pullBytes int64
}

// NewShardReplica wraps sub (a ps sub-server over this shard's tensors,
// built from its OWN model replica — it must not share parameter tensors
// with the primary's sub-server) to stand by for cfg.Workers workers and
// cfg.Steps steps on ln.
func NewShardReplica(ln net.Listener, sub *ps.Server, cfg ShardServerConfig) *ShardReplica {
	if cfg.NumShards < 1 {
		cfg.NumShards = 1
	}
	return &ShardReplica{ps: sub, cfg: cfg, ln: ln}
}

// TrafficBytes reports received push and sent pull wire bytes.
func (r *ShardReplica) TrafficBytes() (push, pull int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushBytes, r.pullBytes
}

// repConn is one inbound connection: the primary's forwarding link or a
// failed-over worker.
type repConn struct {
	c        net.Conn
	rw       *bufio.ReadWriter
	upstream bool
	worker   int
	lastPush int // step of the worker's most recent direct push
	closed   bool
}

// repEvent is one frame (or connection failure) delivered to the serve
// loop. Payloads are copied out of the reader's scratch: the loop may
// buffer them across many subsequent frames.
type repEvent struct {
	wc      *repConn
	t       MsgType
	payload []byte
	err     error
}

// Serve runs the replica until it has observed all cfg.Steps steps —
// through primary forwarding, failed-over workers, or any mix — then
// closes its connections and returns. It never initiates traffic to
// workers that have not connected to it.
func (r *ShardReplica) Serve() error {
	events := make(chan repEvent, 4*(r.cfg.Workers+1))
	done := make(chan struct{})
	var connsMu sync.Mutex
	var all []net.Conn
	defer func() {
		// Unblock and retire every reader goroutine, then close sockets.
		close(done)
		connsMu.Lock()
		defer connsMu.Unlock()
		r.ln.Close()
		for _, c := range all {
			c.Close()
		}
	}()

	// Accept loop: each connection gets a reader goroutine that
	// handshakes, registers via an event, and then streams frames.
	go func() {
		for {
			c, err := r.ln.Accept()
			if err != nil {
				return // listener closed: Serve is done
			}
			connsMu.Lock()
			all = append(all, c)
			connsMu.Unlock()
			go r.readConn(c, events, done)
		}
	}()

	pending := make(map[int][]byte) // worker id -> current step's push payload
	var workers []*repConn          // failed-over worker connections
	var upstream *repConn
	var lastPull []byte // retained pull payload of the last finished step
	finished := 0       // completed steps
	var wires [][]byte  // wire-set parse scratch

	for finished < r.cfg.Steps {
		ev := <-events
		switch {
		case ev.err != nil:
			if ev.wc == nil {
				return ev.err // listener-level failure
			}
			// A dead upstream means the primary crashed (or finished and
			// closed): keep serving — the workers will fail over to us. A
			// dead worker conn just drops out of the broadcast set.
			ev.wc.closed = true
			if ev.wc.upstream {
				upstream = nil
			}
		case ev.t == MsgReplicaHello:
			if upstream != nil {
				return fmt.Errorf("transport: replica shard %d: second upstream connection", r.cfg.Shard)
			}
			upstream = ev.wc
		case ev.t == MsgShardHello:
			for _, wc := range workers {
				if !wc.closed && wc.worker == ev.wc.worker {
					return fmt.Errorf("transport: replica shard %d: duplicate worker %d", r.cfg.Shard, ev.wc.worker)
				}
			}
			workers = append(workers, ev.wc)
		case ev.t == MsgReplicaPush || ev.t == MsgShardPush:
			h, _, err := ParseShardHeader(ev.payload)
			if err != nil {
				return err
			}
			if int(h.Shard) != r.cfg.Shard {
				return fmt.Errorf("transport: replica shard %d: push for shard %d", r.cfg.Shard, h.Shard)
			}
			if h.Tenant != r.cfg.Tenant || h.Epoch != r.cfg.Epoch {
				return fmt.Errorf("transport: replica shard %d: push for tenant %d epoch %d on endpoint serving tenant %d epoch %d",
					r.cfg.Shard, h.Tenant, h.Epoch, r.cfg.Tenant, r.cfg.Epoch)
			}
			w, step := int(h.Worker), int(h.Step)
			if w < 0 || w >= r.cfg.Workers {
				return fmt.Errorf("transport: replica shard %d: bad worker id %d", r.cfg.Shard, w)
			}
			if !ev.wc.upstream {
				ev.wc.lastPush = step
			}
			r.mu.Lock()
			r.pushBytes += int64(len(ev.payload))
			r.mu.Unlock()
			switch {
			case step == finished-1:
				// Replay of a step this replica already completed: the
				// primary died after the full step was forwarded. Nothing
				// to apply — answer the worker from the retained pull.
				if !ev.wc.upstream {
					if err := r.sendPull(ev.wc, lastPull); err != nil {
						ev.wc.closed = true
					}
				}
			case step == finished:
				// (tenant, worker, step) dedupe: the tenant matched above,
				// step == finished here, so the worker id completes the
				// identity.
				if _, dup := pending[w]; !dup {
					pending[w] = ev.payload
				}
			default:
				return fmt.Errorf("transport: replica shard %d: push for step %d while at step %d", r.cfg.Shard, step, finished)
			}
		default:
			return fmt.Errorf("transport: replica shard %d: unexpected frame type %d", r.cfg.Shard, ev.t)
		}

		if len(pending) < r.cfg.Workers {
			continue
		}
		// Full step: apply in worker-id order (float accumulation order is
		// state), advance the sub-server, retain the pull, answer the
		// workers that pushed this step directly.
		r.ps.BeginStep()
		for id := 0; id < r.cfg.Workers; id++ {
			_, body, err := ParseShardHeader(pending[id])
			if err != nil {
				return err
			}
			var werr error
			wires, _, werr = ParseWireSetInto(wires, body)
			if werr != nil {
				return fmt.Errorf("transport: replica shard %d worker %d: %w", r.cfg.Shard, id, werr)
			}
			if _, err := r.ps.AddPush(id, wires); err != nil {
				return fmt.Errorf("transport: replica shard %d: %w", r.cfg.Shard, err)
			}
		}
		pull, _, err := r.ps.FinishStep()
		if err != nil {
			return fmt.Errorf("transport: replica shard %d: %w", r.cfg.Shard, err)
		}
		lastPull = AppendShardHeader(lastPull[:0], ShardHeader{
			Version: ShardWireVersion,
			Shard:   uint16(r.cfg.Shard),
			Step:    uint32(finished),
			Tenant:  r.cfg.Tenant,
			Epoch:   r.cfg.Epoch,
		})
		lastPull = AppendWireSet(lastPull, pull)
		for _, wc := range workers {
			if wc.closed || wc.lastPush != finished {
				continue
			}
			if err := r.sendPull(wc, lastPull); err != nil {
				wc.closed = true
			}
		}
		for id := range pending {
			delete(pending, id)
		}
		finished++
	}
	return nil
}

// sendPull writes one retained pull payload to a failed-over worker.
func (r *ShardReplica) sendPull(wc *repConn, payload []byte) error {
	r.cfg.Timeouts.beforeWrite(wc.c)
	if err := WriteFrame(wc.rw, MsgShardPull, payload); err != nil {
		return err
	}
	if err := wc.rw.Flush(); err != nil {
		return err
	}
	r.mu.Lock()
	r.pullBytes += int64(len(payload))
	r.mu.Unlock()
	return nil
}

// readConn handshakes one inbound connection and streams its frames to
// the serve loop, copying each payload out of the reader scratch.
func (r *ShardReplica) readConn(c net.Conn, events chan<- repEvent, done <-chan struct{}) {
	send := func(ev repEvent) bool {
		select {
		case events <- ev:
			return true
		case <-done:
			return false
		}
	}
	rw := newConnRW(c)
	fr := NewFrameReader(rw)
	wc := &repConn{c: c, rw: rw}
	// Every read is deadline-armed (cfg.Timeouts.Read must exceed a step
	// interval, the frame cadence of both the upstream forwarding link
	// and failed-over workers): a silently dead peer surfaces as a
	// timeout event instead of parking this reader forever.
	r.cfg.Timeouts.beforeRead(c)
	t, payload, err := fr.ReadFrame()
	if err != nil {
		send(repEvent{wc: wc, err: err})
		return
	}
	switch t {
	case MsgReplicaHello, MsgShardHello:
		h, rest, err := ParseShardHeader(payload)
		if err != nil {
			send(repEvent{wc: wc, err: err})
			return
		}
		if h.Flags&(FlagChecksum|FlagResilient) != 0 {
			// The replay path stores and re-parses raw push payloads; it
			// does not speak the checksummed wire. A checksummed hello
			// would also fail the trailing-length check below, but reject
			// it by name so the error says why.
			send(repEvent{wc: wc, err: fmt.Errorf("transport: replica shard %d: checksummed/resilient clients are not replicated", r.cfg.Shard)})
			return
		}
		if int(h.Shard) != r.cfg.Shard || len(rest) != 4 || le.Uint32(rest) != r.cfg.AssignmentHash {
			send(repEvent{wc: wc, err: fmt.Errorf("transport: replica shard %d: bad hello (shard %d)", r.cfg.Shard, h.Shard)})
			return
		}
		if h.Tenant != r.cfg.Tenant || h.Epoch != r.cfg.Epoch {
			send(repEvent{wc: wc, err: fmt.Errorf("transport: replica shard %d: hello for tenant %d epoch %d on endpoint serving tenant %d epoch %d",
				r.cfg.Shard, h.Tenant, h.Epoch, r.cfg.Tenant, r.cfg.Epoch)})
			return
		}
		wc.upstream = t == MsgReplicaHello
		wc.worker = int(h.Worker)
		wc.lastPush = -1
		if !send(repEvent{wc: wc, t: t}) {
			return
		}
	default:
		send(repEvent{wc: wc, err: fmt.Errorf("transport: replica shard %d: expected hello, got type %d", r.cfg.Shard, t)})
		return
	}
	for {
		r.cfg.Timeouts.beforeRead(c)
		t, payload, err := fr.ReadFrame()
		if err != nil {
			send(repEvent{wc: wc, err: err})
			return
		}
		if !send(repEvent{wc: wc, t: t, payload: append([]byte(nil), payload...)}) {
			return
		}
	}
}
