package transport

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/shard"
	"threelc/internal/tenant"
	"threelc/internal/tensor"
)

// muxJob is one tenant's workload in the multi-tenant TCP tests.
type muxJob struct {
	id     tenant.ID
	tagged bool // false = legacy untagged client mapping to the default tenant
	scheme compress.Scheme
	opts   compress.Options
	mseed  uint64
}

func (j muxJob) config(workers, steps int) ps.Config {
	return ps.Config{
		Scheme:           j.scheme,
		Opts:             j.opts,
		Workers:          workers,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(workers, steps),
	}
}

func (j muxJob) build() *nn.Model { return nn.NewMLP(12, []int{16, 10}, 4, j.mseed) }

// runJobWorkers drives all of one job's workers over pushPull clients and
// returns the first worker error.
func runJobWorkers(t *testing.T, j muxJob, cfg ps.Config, global *nn.Model,
	workers, steps int, dial func(w int) (*ShardClient, error)) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dial(w)
			if err != nil {
				t.Errorf("tenant %d worker %d dial: %v", j.id, w, err)
				return
			}
			defer cl.Close()
			m := j.build()
			m.CopyParamsFrom(global)
			wk := ps.NewWorker(w, m, cfg)
			rng := tensor.NewRNG(1000 + uint64(w))
			for step := 0; step < steps; step++ {
				x := tensor.New(6, 12)
				tensor.FillNormal(x, 1, rng)
				labels := make([]int, 6)
				for i := range labels {
					labels[i] = (step + w + i) % 4
				}
				wk.Model.TrainStep(x, labels)
				wires, _ := wk.CompressGrads()
				pull, err := cl.PushPull(step, wires)
				if err != nil {
					t.Errorf("tenant %d worker %d step %d: %v", j.id, w, step, err)
					return
				}
				if _, err := wk.ApplyPull(pull); err != nil {
					t.Errorf("tenant %d worker %d step %d apply: %v", j.id, w, step, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// jobReference runs j's workload through the in-process single parameter
// server and returns the final global weights.
func jobReference(t *testing.T, j muxJob, workers, steps int) []float32 {
	t.Helper()
	cfg := j.config(workers, steps)
	global := j.build()
	srv := ps.NewServer(global, cfg)
	ws := make([]*ps.Worker, workers)
	rngs := make([]*tensor.RNG, workers)
	for w := range ws {
		m := j.build()
		m.CopyParamsFrom(global)
		ws[w] = ps.NewWorker(w, m, cfg)
		rngs[w] = tensor.NewRNG(1000 + uint64(w))
	}
	for step := 0; step < steps; step++ {
		srv.BeginStep()
		wires := make([][][]byte, workers)
		for w, wk := range ws {
			x := tensor.New(6, 12)
			tensor.FillNormal(x, 1, rngs[w])
			labels := make([]int, 6)
			for i := range labels {
				labels[i] = (step + w + i) % 4
			}
			wk.Model.TrainStep(x, labels)
			wires[w], _ = wk.CompressGrads()
		}
		for w := range ws {
			if _, err := srv.AddPush(w, wires[w]); err != nil {
				t.Fatal(err)
			}
		}
		pulls, _, err := srv.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for _, wk := range ws {
			if _, err := wk.ApplyPull(pulls); err != nil {
				t.Fatal(err)
			}
		}
	}
	var flat []float32
	for _, p := range global.Params() {
		flat = append(flat, p.W.Data()...)
	}
	return flat
}

// TestMuxShardServerMultiTenantTCP is the multi-tenant transport gate:
// three jobs — two tagged tenants plus one legacy UNTAGGED client mapping
// to the default tenant — run concurrently over one shared 2-shard tier
// behind multiplexed TCP endpoints, and every job's final server-side
// model must be bit-identical to its in-process single-PS run.
func TestMuxShardServerMultiTenantTCP(t *testing.T) {
	const workers, steps, shards = 2, 3, 2
	jobs := []muxJob{
		{id: tenant.Default, tagged: false, scheme: compress.SchemeThreeLC, opts: compress.Options{Sparsity: 1.5, ZeroRun: true}, mseed: 7},
		{id: 4, tagged: true, scheme: compress.SchemeInt8, mseed: 8},
		{id: 9, tagged: true, scheme: compress.SchemeTopK, opts: compress.Options{Fraction: 0.3, Seed: 9}, mseed: 9},
	}
	to := Timeouts{Read: 30 * time.Second, Write: 10 * time.Second}

	svc := shard.NewService(shard.Config{Shards: shards}, tenant.NewRegistry(len(jobs)))
	defer svc.Close()
	globals := make([]*nn.Model, len(jobs))
	epochs := make([]tenant.Epoch, len(jobs))
	for i, j := range jobs {
		globals[i] = j.build()
		h, err := svc.Admit(j.id, globals[i], j.config(workers, steps), tenant.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		epochs[i] = h.Tenant().Epoch
	}

	addrs := make([]string, shards)
	srvErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		go func(s int) {
			srvErr <- NewMuxShardServer(ln, svc, MuxShardServerConfig{
				Shard:    s,
				Tenants:  len(jobs),
				Timeouts: to,
			}).Serve()
		}(s)
	}

	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j muxJob) {
			defer wg.Done()
			ccfg := ShardClientConfig{Timeouts: to}
			if j.tagged {
				ccfg.Tenant = uint32(j.id)
				ccfg.Epoch = uint32(epochs[i])
			}
			cfg := j.config(workers, steps)
			runJobWorkers(t, j, cfg, globals[i], workers, steps, func(w int) (*ShardClient, error) {
				return DialShardedConfig(addrs, w, shard.ForModel(j.build(), shards), ccfg)
			})
		}(i, j)
	}
	wg.Wait()
	for s := 0; s < shards; s++ {
		if err := <-srvErr; err != nil {
			t.Fatalf("mux serve: %v", err)
		}
	}

	for i, j := range jobs {
		want := jobReference(t, j, workers, steps)
		var got []float32
		for _, p := range globals[i].Params() {
			got = append(got, p.W.Data()...)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("tenant %d weight %d differs from single-PS reference: %v != %v", j.id, k, got[k], want[k])
			}
		}
	}
}

// TestMuxShardServerChecksumPerWorker pins two properties of the
// multiplexed tier's integrity negotiation: checksummed and plain
// clients coexist on one mux endpoint (the flag is per-WORKER, carried
// on each hello, not per-listener), and a resilient client is refused
// outright — reconnect-and-replay seats are a dedicated-listener
// feature, and silently accepting one would hand it a seat that cannot
// be reacquired. Both jobs must still land bit-identical to their
// single-PS references.
func TestMuxShardServerChecksumPerWorker(t *testing.T) {
	const workers, steps, shards = 2, 3, 2
	jobs := []muxJob{
		{id: tenant.Default, tagged: false, scheme: compress.SchemeThreeLC, opts: compress.Options{Sparsity: 1.5, ZeroRun: true}, mseed: 7},
		{id: 5, tagged: true, scheme: compress.SchemeStoch3QE, opts: compress.Options{Seed: 9}, mseed: 8},
	}
	checksummed := []bool{false, true}
	to := Timeouts{Read: 30 * time.Second, Write: 10 * time.Second}

	svc := shard.NewService(shard.Config{Shards: shards}, tenant.NewRegistry(len(jobs)))
	defer svc.Close()
	globals := make([]*nn.Model, len(jobs))
	epochs := make([]tenant.Epoch, len(jobs))
	for i, j := range jobs {
		globals[i] = j.build()
		h, err := svc.Admit(j.id, globals[i], j.config(workers, steps), tenant.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		epochs[i] = h.Tenant().Epoch
	}

	addrs := make([]string, shards)
	srvErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		go func(s int) {
			srvErr <- NewMuxShardServer(ln, svc, MuxShardServerConfig{
				Shard:    s,
				Tenants:  len(jobs),
				Timeouts: to,
			}).Serve()
		}(s)
	}

	// A resilient client must be turned away at the hello. The mux drops
	// the connection; the client's redial budget burns down against the
	// same refusal and the failure surfaces from PushPull.
	res, err := DialShardedConfig(addrs, 0, shard.ForModel(jobs[1].build(), shards),
		ShardClientConfig{
			Timeouts:  Timeouts{Read: time.Second, Write: time.Second},
			Tenant:    uint32(jobs[1].id),
			Epoch:     uint32(epochs[1]),
			Checksum:  true,
			Resilient: true,
			Retry:     RetryPolicy{MaxAttempts: 2, Base: 10 * time.Millisecond, Cap: 20 * time.Millisecond},
		})
	if err == nil {
		wk := ps.NewWorker(0, jobs[1].build(), jobs[1].config(workers, steps))
		wk.Model.TrainStep(tensor.New(6, 12), make([]int, 6))
		wires, _ := wk.CompressGrads()
		if _, err := res.PushPull(0, wires); err == nil {
			t.Error("resilient client completed a push/pull through the mux tier")
		}
		res.Close()
	}

	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j muxJob) {
			defer wg.Done()
			ccfg := ShardClientConfig{Timeouts: to, Checksum: checksummed[i]}
			if j.tagged {
				ccfg.Tenant = uint32(j.id)
				ccfg.Epoch = uint32(epochs[i])
			}
			cfg := j.config(workers, steps)
			runJobWorkers(t, j, cfg, globals[i], workers, steps, func(w int) (*ShardClient, error) {
				return DialShardedConfig(addrs, w, shard.ForModel(j.build(), shards), ccfg)
			})
		}(i, j)
	}
	wg.Wait()
	for s := 0; s < shards; s++ {
		if err := <-srvErr; err != nil {
			t.Fatalf("mux serve: %v", err)
		}
	}

	for i, j := range jobs {
		want := jobReference(t, j, workers, steps)
		var got []float32
		for _, p := range globals[i].Params() {
			got = append(got, p.W.Data()...)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("tenant %d (checksum=%v) weight %d differs from single-PS reference: %v != %v",
					j.id, checksummed[i], k, got[k], want[k])
			}
		}
	}
}

// TestMuxShardServerRejectsUnknownTenant pins hello-time admission: a
// client tagged with an unadmitted tenant id must be refused while the
// admitted tenants' jobs proceed untouched.
func TestMuxShardServerRejectsUnknownTenant(t *testing.T) {
	const workers, steps = 1, 2
	j := muxJob{id: 4, tagged: true, scheme: compress.SchemeNone, mseed: 7}
	to := Timeouts{Read: 5 * time.Second, Write: 5 * time.Second}

	svc := shard.NewService(shard.Config{Shards: 1}, tenant.NewRegistry(2))
	defer svc.Close()
	global := j.build()
	h, err := svc.Admit(j.id, global, j.config(workers, steps), tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- NewMuxShardServer(ln, svc, MuxShardServerConfig{Tenants: 1, Timeouts: to}).Serve()
	}()

	// The impostor's hello names a tenant the registry never admitted. The
	// server drops the connection; the client surfaces it as a broken pull.
	imp, err := DialShardedConfig([]string{addr}, 0, shard.ForModel(j.build(), 1),
		ShardClientConfig{Timeouts: Timeouts{Read: time.Second, Write: time.Second}, Tenant: 99, Epoch: 1})
	if err == nil {
		wk := ps.NewWorker(0, j.build(), j.config(workers, steps))
		wk.Model.TrainStep(tensor.New(6, 12), make([]int, 6))
		wires, _ := wk.CompressGrads()
		if _, err := imp.PushPull(0, wires); err == nil {
			t.Error("unadmitted tenant completed a push/pull")
		}
		imp.Close()
	}

	// The real tenant still trains to completion.
	cfg := j.config(workers, steps)
	runJobWorkers(t, j, cfg, global, workers, steps, func(w int) (*ShardClient, error) {
		return DialShardedConfig([]string{addr}, w, shard.ForModel(j.build(), 1),
			ShardClientConfig{Timeouts: to, Tenant: uint32(j.id), Epoch: uint32(h.Tenant().Epoch)})
	})
	if err := <-srvErr; err != nil {
		t.Fatalf("mux serve: %v", err)
	}
}

// TestReplicaRejectsCrossTenantPush is the regression test for the
// straggler dedupe identity: replay deduplication is keyed on (tenant,
// worker, step), so a push from ANOTHER tenant that happens to carry the
// same worker and step numbers must be rejected outright — under the old
// (worker, step) identity it would have been silently deduplicated or,
// worse, applied into the wrong job's state.
func TestReplicaRejectsCrossTenantPush(t *testing.T) {
	const tenID, tenEpoch = 7, 3
	j := muxJob{id: tenID, scheme: compress.SchemeNone, mseed: 7}
	cfg := j.config(1, 1)
	model := j.build()
	asn := shard.ForModel(model, 1)
	subs := mustSubServers(t, model, cfg, asn)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- NewShardReplica(ln, subs[0], ShardServerConfig{
			Workers:        1,
			Steps:          1,
			AssignmentHash: asn.Hash(),
			Timeouts:       Timeouts{Read: 5 * time.Second, Write: 5 * time.Second},
			Tenant:         tenID,
			Epoch:          tenEpoch,
		}).Serve()
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c))

	// Handshake with the replica's own job identity...
	hello := AppendShardHeader(nil, ShardHeader{
		Version: ShardWireVersion, Tenant: tenID, Epoch: tenEpoch,
	})
	var hb [4]byte
	le.PutUint32(hb[:], asn.Hash())
	hello = append(hello, hb[:]...)
	if err := WriteFrame(rw, MsgShardHello, hello); err != nil {
		t.Fatal(err)
	}
	// ...then push the same (worker 0, step 0) tagged as a DIFFERENT
	// tenant, as a recycled-id worker from a retired job would.
	wk := ps.NewWorker(0, j.build(), cfg)
	wk.Model.TrainStep(tensor.New(6, 12), make([]int, 6))
	wires, _ := wk.CompressGrads()
	push := AppendShardHeader(nil, ShardHeader{
		Version: ShardWireVersion, Tenant: tenID + 1, Epoch: tenEpoch,
	})
	push = AppendWireSet(push, wires)
	if err := WriteFrame(rw, MsgShardPush, push); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}

	err = <-srvErr
	if err == nil {
		t.Fatal("replica accepted a push from another tenant")
	}
	if !strings.Contains(err.Error(), "tenant") {
		t.Fatalf("rejection does not name the tenant mismatch: %v", err)
	}
}

// TestShardHeaderTenantExtension pins the wire format of the FlagTenant
// extension and — critically — that untagged headers remain byte-for-byte
// the pre-multi-tenant format, so v1-era peers interoperate unchanged.
func TestShardHeaderTenantExtension(t *testing.T) {
	legacy := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Shard: 3, Step: 9, Worker: 2})
	if len(legacy) != ShardHeaderLen {
		t.Fatalf("untagged header is %d bytes, want the legacy %d", len(legacy), ShardHeaderLen)
	}
	h, rest, err := ParseShardHeader(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tenant != 0 || h.Epoch != 0 || len(rest) != 0 {
		t.Fatalf("untagged header parsed as %+v rest=%d", h, len(rest))
	}

	tagged := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Shard: 3, Step: 9, Worker: 2, Tenant: 41, Epoch: 6})
	if len(tagged) != ShardHeaderLen+shardTenantExtLen {
		t.Fatalf("tagged header is %d bytes, want %d", len(tagged), ShardHeaderLen+shardTenantExtLen)
	}
	h, rest, err = ParseShardHeader(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags&FlagTenant == 0 || h.Tenant != 41 || h.Epoch != 6 || len(rest) != 0 {
		t.Fatalf("tagged header parsed as %+v rest=%d", h, len(rest))
	}
}
