package transport

import (
	"errors"
	"net"
	"time"

	"threelc/internal/retry"
)

// RetryPolicy is the transport tier's retry/backoff schedule: capped
// exponential delays with deterministic seeded jitter, shared with the
// shard service's straggler path through internal/retry so every retry
// loop in the tree is tuned (and reproduced) in one place. The zero
// value is a sane default; see retry.Policy for the knobs.
type RetryPolicy = retry.Policy

// Timeouts bounds how long a single framed read or write may block on a
// connection. Without deadlines a silently dead peer — a worker whose
// machine lost power, a parameter-server shard behind a partitioned link —
// parks PushPull (and the server's read loop) forever: TCP keeps the
// socket "established" until the kernel's keepalive fires hours later.
// With deadlines, the blocked operation fails with a net.Error whose
// Timeout() reports true, which callers surface (and the sharded client's
// failover path treats as a dead-primary signal).
//
// Read covers one frame receive. On the BSP protocol a pull read spans the
// whole barrier — every worker's compute plus the server's update — so
// Read must comfortably exceed a step time, not a network round trip.
// Write covers one frame write + flush. Zero disables the respective
// deadline (the previous behavior).
type Timeouts struct {
	Read  time.Duration
	Write time.Duration
}

// beforeRead arms (or clears) the connection's read deadline for one
// frame receive.
func (t Timeouts) beforeRead(c net.Conn) {
	if t.Read > 0 {
		c.SetReadDeadline(time.Now().Add(t.Read))
	}
}

// beforeWrite arms (or clears) the connection's write deadline for one
// frame write + flush.
func (t Timeouts) beforeWrite(c net.Conn) {
	if t.Write > 0 {
		c.SetWriteDeadline(time.Now().Add(t.Write))
	}
}

// IsTimeout reports whether err (or anything it wraps) is a network
// timeout — the failure mode deadlines convert a dead peer into.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
