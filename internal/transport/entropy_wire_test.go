package transport

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/ps"
	"threelc/internal/shard"
	"threelc/internal/tenant"
	"threelc/internal/tensor"
)

// TestEntropyShardTCPMatchesSinglePS runs a mixed tier over loopback TCP —
// worker 0 negotiates the Huffman wire stage, worker 1 the LZ stage, and
// worker 2 dials plain (a pre-entropy binary) — and checks the final
// global state is bit-identical to the in-process single server. One
// entropy-capable server tier must serve tagged and untagged clients in
// the same step without the stage leaking into model state.
func TestEntropyShardTCPMatchesSinglePS(t *testing.T) {
	const workers, steps, shards = 3, 3, 2
	cfg := shardTestConfig(workers, steps)

	global := buildShardModel()
	asn := shard.ForModel(global, shards)
	subs := mustSubServers(t, global, cfg, asn)

	addrs := make([]string, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		srv := NewShardServer(ln, subs[s], ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        workers,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
		})
		go func() { serveErr <- srv.Serve() }()
	}

	stages := []compress.EntropyAlgo{compress.EntropyHuffman, compress.EntropyLZ, compress.EntropyOff}
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			cl, err := DialShardedConfig(addrs, w, shard.ForModel(buildShardModel(), shards),
				ShardClientConfig{Entropy: stages[w]})
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			driveWorker(t, w, steps, cfg, global, cl.PushPull)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			t.Fatalf("shard serve: %v", err)
		}
	}

	want := referenceWeights(t, workers, steps)
	var got []float32
	for _, p := range global.Params() {
		got = append(got, p.W.Data()...)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d differs: single %v entropy-tcp %v", i, want[i], got[i])
		}
	}
}

// recordingProxy relays one TCP connection to target, recording the raw
// byte streams in both directions.
type recordingProxy struct {
	addr     string
	mu       sync.Mutex
	toServer bytes.Buffer
	toClient bytes.Buffer
	done     chan struct{}
}

func newRecordingProxy(t *testing.T, target string) *recordingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &recordingProxy{addr: ln.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		cc, err := ln.Accept()
		ln.Close()
		if err != nil {
			return
		}
		sc, err := net.Dial("tcp", target)
		if err != nil {
			cc.Close()
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			p.copy(&p.toServer, sc, cc)
			sc.(*net.TCPConn).CloseWrite()
		}()
		go func() {
			defer wg.Done()
			p.copy(&p.toClient, cc, sc)
			cc.(*net.TCPConn).CloseWrite()
		}()
		wg.Wait()
		cc.Close()
		sc.Close()
	}()
	return p
}

func (p *recordingProxy) copy(rec *bytes.Buffer, dst net.Conn, src net.Conn) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			rec.Write(buf[:n])
			p.mu.Unlock()
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestEntropyOffFramesByteIdentical pins the backward-compatibility
// contract of FlagEntropy: a client that does not negotiate the stage
// emits a byte stream identical to the documented pre-entropy wire
// format, and the server answers it likewise. The test taps the TCP
// stream through a recording proxy and compares every byte against
// frames reconstructed from the pre-entropy layout (hello2 = header +
// placement hash, push2/pull2 = header + plain wire set) around an
// in-process mirror of the same deterministic workload.
func TestEntropyOffFramesByteIdentical(t *testing.T) {
	const workers, steps = 1, 2
	cfg := shardTestConfig(workers, steps)

	global := buildShardModel()
	asn := shard.ForModel(global, 1)
	subs := mustSubServers(t, global, cfg, asn)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewShardServer(ln, subs[0], ShardServerConfig{
		Shard:          0,
		NumShards:      1,
		Workers:        workers,
		Steps:          steps,
		AssignmentHash: asn.Hash(),
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	proxy := newRecordingProxy(t, ln.Addr().String())

	cl, err := DialSharded([]string{proxy.addr}, 0, shard.ForModel(buildShardModel(), 1))
	if err != nil {
		t.Fatal(err)
	}
	driveWorker(t, 0, steps, cfg, global, cl.PushPull)
	cl.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	<-proxy.done

	// Reconstruct the expected pre-entropy byte streams from an
	// in-process mirror of the same deterministic workload.
	mirror := buildShardModel()
	msubs := mustSubServers(t, mirror, cfg, asn)
	wm := buildShardModel()
	wm.CopyParamsFrom(mirror)
	wk := ps.NewWorker(0, wm, cfg)
	rng := tensor.NewRNG(1000)

	var wantToServer, wantToClient bytes.Buffer
	hello := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion})
	var hb [4]byte
	le.PutUint32(hb[:], asn.Hash())
	hello = append(hello, hb[:]...)
	writeTestFrame(t, &wantToServer, MsgShardHello, hello)

	for step := 0; step < steps; step++ {
		x := tensor.New(6, 12)
		tensor.FillNormal(x, 1, rng)
		labels := make([]int, 6)
		for i := range labels {
			labels[i] = (step + i) % 4
		}
		wk.Model.TrainStep(x, labels)
		wires, _ := wk.CompressGrads()

		push := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Step: uint32(step)})
		push = AppendWireSet(push, wires)
		writeTestFrame(t, &wantToServer, MsgShardPush, push)

		msubs[0].BeginStep()
		if _, err := msubs[0].AddPush(0, wires); err != nil {
			t.Fatal(err)
		}
		pulls, _, err := msubs[0].FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		pull := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion, Step: uint32(step)})
		pull = AppendWireSet(pull, pulls)
		writeTestFrame(t, &wantToClient, MsgShardPull, pull)
		if _, err := wk.ApplyPull(pulls); err != nil {
			t.Fatal(err)
		}
	}

	proxy.mu.Lock()
	gotToServer := append([]byte(nil), proxy.toServer.Bytes()...)
	gotToClient := append([]byte(nil), proxy.toClient.Bytes()...)
	proxy.mu.Unlock()
	if !bytes.Equal(gotToServer, wantToServer.Bytes()) {
		t.Errorf("client->server stream differs from pre-entropy format: got %d bytes, want %d",
			len(gotToServer), wantToServer.Len())
	}
	if !bytes.Equal(gotToClient, wantToClient.Bytes()) {
		t.Errorf("server->client stream differs from pre-entropy format: got %d bytes, want %d",
			len(gotToClient), wantToClient.Len())
	}
}

// writeTestFrame frames payload into buf via the production framer.
func writeTestFrame(t *testing.T, buf *bytes.Buffer, typ MsgType, payload []byte) {
	t.Helper()
	if err := WriteFrame(buf, typ, payload); err != nil {
		t.Fatal(err)
	}
}

// TestEntropyHelloRejections covers the negotiation error surface: an
// unknown stage byte is refused at the hello, a replicated shard refuses
// the stage outright (entropy frames are not forwarded to replicas), the
// client constructor refuses the Entropy+Replicas combination, and the
// multi-tenant mux endpoint (which speaks only the 4-byte hello rest)
// refuses an entropy hello instead of silently downgrading it.
func TestEntropyHelloRejections(t *testing.T) {
	cfg := shardTestConfig(1, 1)
	global := buildShardModel()
	asn := shard.ForModel(global, 1)

	dialHello := func(addr string, hello []byte) error {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		rw := newConnRW(conn)
		if err := WriteFrame(rw, MsgShardHello, hello); err != nil {
			return err
		}
		if err := rw.Flush(); err != nil {
			return err
		}
		// A rejected hello closes the connection; a served one would
		// block until the step loop, so only the error path returns.
		_, _, err = NewFrameReader(rw).ReadFrame()
		return err
	}

	t.Run("unknown stage byte", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		subs := mustSubServers(t, buildShardModel(), cfg, asn)
		srv := NewShardServer(ln, subs[0], ShardServerConfig{
			NumShards: 1, Workers: 1, Steps: 1, AssignmentHash: asn.Hash(),
		})
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve() }()
		hello := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion})
		var hb [4]byte
		le.PutUint32(hb[:], asn.Hash())
		hello = append(hello, hb[:]...)
		if err := dialHello(ln.Addr().String(), append(hello, 0x7f)); err == nil {
			t.Error("hello with unknown entropy stage byte was accepted")
		}
		if err := <-serveErr; err == nil || !strings.Contains(err.Error(), "entropy stage") {
			t.Errorf("server error = %v, want unknown entropy stage rejection", err)
		}
	})

	t.Run("replicated shard refuses stage", func(t *testing.T) {
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rsubs := mustSubServers(t, buildShardModel(), cfg, asn)
		go NewShardReplica(rln, rsubs[0], ShardServerConfig{
			Workers: 1, Steps: 1, AssignmentHash: asn.Hash(),
		}).Serve() // torn down when the primary's deferred cleanup closes its conn

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		subs := mustSubServers(t, buildShardModel(), cfg, asn)
		srv := NewShardServer(ln, subs[0], ShardServerConfig{
			NumShards: 1, Workers: 1, Steps: 1, AssignmentHash: asn.Hash(),
			ReplicaAddr: rln.Addr().String(),
		})
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve() }()
		hello := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion})
		var hb [4]byte
		le.PutUint32(hb[:], asn.Hash())
		hello = append(hello, hb[:]...)
		if err := dialHello(ln.Addr().String(), append(hello, byte(entropyBodyHuffman))); err == nil {
			t.Error("entropy hello on a replicated shard was accepted")
		}
		if err := <-serveErr; err == nil || !strings.Contains(err.Error(), "replicated") {
			t.Errorf("server error = %v, want replication rejection", err)
		}
	})

	t.Run("client refuses entropy with replicas", func(t *testing.T) {
		_, err := DialShardedConfig([]string{"127.0.0.1:1"}, 0, asn, ShardClientConfig{
			Entropy:  compress.EntropyHuffman,
			Replicas: []string{"127.0.0.1:2"},
		})
		if err == nil || !strings.Contains(err.Error(), "entropy") {
			t.Errorf("DialShardedConfig error = %v, want entropy/replica incompatibility", err)
		}
	})

	t.Run("mux endpoint refuses entropy hello", func(t *testing.T) {
		svc := shard.NewService(shard.Config{Shards: 1}, tenant.NewRegistry(1))
		defer svc.Close()
		h, err := svc.Admit(3, buildShardModel(), cfg, tenant.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go NewMuxShardServer(ln, svc, MuxShardServerConfig{Tenants: 1}).Serve()

		hello := AppendShardHeader(nil, ShardHeader{
			Version: ShardWireVersion,
			Tenant:  3,
			Epoch:   uint32(h.Tenant().Epoch),
		})
		var hb [4]byte
		le.PutUint32(hb[:], shard.ForModel(buildShardModel(), 1).Hash())
		hello = append(hello, hb[:]...)
		hello = append(hello, byte(entropyBodyHuffman))
		if err := dialHello(ln.Addr().String(), hello); err == nil {
			t.Error("mux accepted an entropy hello; want rejection (trailing-bytes check)")
		}
	})
}

// TestEntropyBodyHelpers unit-tests the frame body coder: coded bodies
// round-trip, incompressible bodies fall back to the stored stage within
// the documented one-byte overhead, and corrupt bodies error cleanly.
func TestEntropyBodyHelpers(t *testing.T) {
	skewed := bytes.Repeat([]byte{0, 0, 0, 1, 0, 0, 2, 0}, 512)
	var noise []byte
	rng := tensor.NewRNG(42)
	for i := 0; i < 1024; i++ {
		noise = append(noise, byte(rng.Uint64()))
	}

	for _, algo := range []compress.EntropyAlgo{compress.EntropyHuffman, compress.EntropyLZ} {
		body := appendEntropyBody(nil, algo, skewed)
		if len(body) >= len(skewed)+1 {
			t.Errorf("%v: skewed body did not compress (%d >= %d)", algo, len(body), len(skewed)+1)
		}
		var buf []byte
		raw, err := parseEntropyBody(body, &buf)
		if err != nil {
			t.Fatalf("%v: parse: %v", algo, err)
		}
		if !bytes.Equal(raw, skewed) {
			t.Fatalf("%v: body round trip mismatch", algo)
		}

		stored := appendEntropyBody(nil, algo, noise)
		if len(stored) != len(noise)+1 || stored[0] != entropyBodyStored {
			t.Errorf("%v: incompressible body not stored (len %d, stage %d)", algo, len(stored), stored[0])
		}
	}

	if _, err := parseEntropyBody(nil, new([]byte)); err == nil {
		t.Error("empty entropy body parsed")
	}
	if _, err := parseEntropyBody([]byte{9, 1, 2}, new([]byte)); err == nil {
		t.Error("unknown stage id parsed")
	}
	if _, err := parseEntropyBody([]byte{entropyBodyHuffman, 0xff, 0x01}, new([]byte)); err == nil {
		t.Error("corrupt huffman body parsed")
	}
	if _, err := parseEntropyBody([]byte{entropyBodyLZ, 0xff, 0xff, 0xff, 0xff}, new([]byte)); err == nil {
		t.Error("corrupt lz body parsed")
	}
}
