package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"threelc/internal/ps"
)

// Server drives a ps.Server over real connections with BSP semantics:
// every step it waits for a push from each connected worker, applies the
// update, and broadcasts the shared pull.
type Server struct {
	ps       *ps.Server
	workers  int
	steps    int
	listener net.Listener

	mu        sync.Mutex
	pushBytes int64
	pullBytes int64
}

// NewServer wraps srv to serve `workers` workers for `steps` steps on ln.
func NewServer(ln net.Listener, srv *ps.Server, workers, steps int) *Server {
	return &Server{ps: srv, workers: workers, steps: steps, listener: ln}
}

// TrafficBytes reports the total wire bytes received (pushes) and sent
// (pulls, summed over workers).
func (s *Server) TrafficBytes() (push, pull int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushBytes, s.pullBytes
}

type workerConn struct {
	id int
	rw *bufio.ReadWriter
	c  net.Conn
}

// Serve accepts the configured number of workers, runs the step loop to
// completion, and closes the connections. It returns the first error
// encountered; nil means all steps completed.
func (s *Server) Serve() error {
	conns := make([]*workerConn, 0, s.workers)
	defer func() {
		for _, wc := range conns {
			wc.c.Close()
		}
	}()

	seen := make(map[int]bool)
	for len(conns) < s.workers {
		c, err := s.listener.Accept()
		if err != nil {
			return fmt.Errorf("transport: accept: %w", err)
		}
		rw := bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c))
		t, payload, err := ReadFrame(rw)
		if err != nil {
			c.Close()
			return fmt.Errorf("transport: hello: %w", err)
		}
		if t != MsgHello || len(payload) != 4 {
			c.Close()
			return fmt.Errorf("transport: expected hello, got type %d (%d bytes)", t, len(payload))
		}
		id := int(le.Uint32(payload))
		if id < 0 || id >= s.workers || seen[id] {
			c.Close()
			return fmt.Errorf("transport: bad or duplicate worker id %d", id)
		}
		seen[id] = true
		conns = append(conns, &workerConn{id: id, rw: rw, c: c})
	}

	for step := 0; step < s.steps; step++ {
		s.ps.BeginStep()
		for _, wc := range conns {
			t, payload, err := ReadFrame(wc.rw)
			if err != nil {
				return fmt.Errorf("transport: step %d push from worker %d: %w", step, wc.id, err)
			}
			if t != MsgPush {
				return fmt.Errorf("transport: step %d: expected push, got type %d", step, t)
			}
			if len(payload) < 8 {
				return fmt.Errorf("transport: step %d: short push header", step)
			}
			id := int(le.Uint32(payload))
			gotStep := int(le.Uint32(payload[4:]))
			if id != wc.id {
				return fmt.Errorf("transport: push id %d on worker %d's connection", id, wc.id)
			}
			if gotStep != step {
				return fmt.Errorf("transport: worker %d pushed step %d during step %d (barrier violation)", id, gotStep, step)
			}
			wires, _, err := ParseWireSet(payload[8:])
			if err != nil {
				return fmt.Errorf("transport: step %d worker %d: %w", step, id, err)
			}
			if _, err := s.ps.AddPush(id, wires); err != nil {
				return err
			}
			s.mu.Lock()
			s.pushBytes += int64(len(payload))
			s.mu.Unlock()
		}

		pull, _, err := s.ps.FinishStep()
		if err != nil {
			return err
		}
		payload := make([]byte, 4, 4+ps.WireBytes(pull)+4*len(pull))
		le.PutUint32(payload, uint32(step))
		payload = AppendWireSet(payload, pull)
		for _, wc := range conns {
			if err := WriteFrame(wc.rw, MsgPull, payload); err != nil {
				return fmt.Errorf("transport: step %d pull to worker %d: %w", step, wc.id, err)
			}
			if err := wc.rw.Flush(); err != nil {
				return fmt.Errorf("transport: step %d flush to worker %d: %w", step, wc.id, err)
			}
			s.mu.Lock()
			s.pullBytes += int64(len(payload))
			s.mu.Unlock()
		}
	}
	return nil
}
