package transport

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// StepServer is the aggregation surface Server drives each BSP step:
// open the step, ingest one complete wire-set push per worker, close the
// step and collect the shared pull. The flat parameter server (*ps.Job)
// implements it directly; region.Tier implements it so a hierarchical
// aggregator can sit behind the same front door.
type StepServer interface {
	BeginStep()
	AddPush(workerID int, wires [][]byte) (time.Duration, error)
	FinishStep() ([][]byte, time.Duration, error)
}

// Server drives a StepServer over real connections with BSP semantics:
// every step it waits for a push from each connected worker, applies the
// update, and broadcasts the shared pull.
type Server struct {
	ps       StepServer
	workers  int
	steps    int
	listener net.Listener
	to       Timeouts

	mu        sync.Mutex
	pushBytes int64
	pullBytes int64
}

// NewServer wraps srv to serve `workers` workers for `steps` steps on ln.
func NewServer(ln net.Listener, srv StepServer, workers, steps int) *Server {
	return &Server{ps: srv, workers: workers, steps: steps, listener: ln}
}

// SetTimeouts bounds every per-worker frame read and write in the step
// loop (call before Serve). A worker that dies mid-run then fails the
// step with a net.Error timeout instead of blocking the barrier forever.
// The read deadline must cover a full compute phase, not a round trip.
func (s *Server) SetTimeouts(to Timeouts) { s.to = to }

// TrafficBytes reports the total wire bytes received (pushes) and sent
// (pulls, summed over workers).
func (s *Server) TrafficBytes() (push, pull int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushBytes, s.pullBytes
}

type workerConn struct {
	id    int
	rw    *bufio.ReadWriter
	fr    *FrameReader // per-connection frame reader with recycled scratch
	wires [][]byte     // parsed push set, slice headers recycled each step
	c     net.Conn
}

// Serve accepts the configured number of workers, runs the step loop to
// completion, and closes the connections. It returns the first error
// encountered; nil means all steps completed.
func (s *Server) Serve() error {
	conns := make([]*workerConn, 0, s.workers)
	defer func() {
		for _, wc := range conns {
			wc.c.Close()
		}
	}()

	seen := make(map[int]bool)
	for len(conns) < s.workers {
		c, err := s.listener.Accept()
		if err != nil {
			return fmt.Errorf("transport: accept: %w", err)
		}
		rw := bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c))
		fr := NewFrameReader(rw)
		// Deadline-armed like every step-loop read: a connection that
		// never sends its hello must not stall the serial accept loop.
		s.to.beforeRead(c)
		t, payload, err := fr.ReadFrame()
		if err != nil {
			c.Close()
			return fmt.Errorf("transport: hello: %w", err)
		}
		if t != MsgHello || len(payload) != 4 {
			c.Close()
			return fmt.Errorf("transport: expected hello, got type %d (%d bytes)", t, len(payload))
		}
		id := int(le.Uint32(payload))
		if id < 0 || id >= s.workers || seen[id] {
			c.Close()
			return fmt.Errorf("transport: bad or duplicate worker id %d", id)
		}
		seen[id] = true
		conns = append(conns, &workerConn{id: id, rw: rw, fr: fr, c: c})
	}
	// Service workers in id order, not accept order: float gradient
	// accumulation is not associative, so a run-dependent push order would
	// make the final model state differ in low bits run-to-run (and
	// against the sharded tier, which orders by worker id).
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })

	var pullBuf []byte // pull payload, rebuilt in place each step
	for step := 0; step < s.steps; step++ {
		s.ps.BeginStep()
		for _, wc := range conns {
			// The payload aliases the connection's scratch; it is fully
			// consumed (decoded into the ps server) before the next read.
			s.to.beforeRead(wc.c)
			t, payload, err := wc.fr.ReadFrame()
			if err != nil {
				return fmt.Errorf("transport: step %d push from worker %d: %w", step, wc.id, err)
			}
			if t != MsgPush {
				return fmt.Errorf("transport: step %d: expected push, got type %d", step, t)
			}
			if len(payload) < 8 {
				return fmt.Errorf("transport: step %d: short push header", step)
			}
			id := int(le.Uint32(payload))
			gotStep := int(le.Uint32(payload[4:]))
			if id != wc.id {
				return fmt.Errorf("transport: push id %d on worker %d's connection", id, wc.id)
			}
			if gotStep != step {
				return fmt.Errorf("transport: worker %d pushed step %d during step %d (barrier violation)", id, gotStep, step)
			}
			wires, _, err := ParseWireSetInto(wc.wires, payload[8:])
			if err != nil {
				return fmt.Errorf("transport: step %d worker %d: %w", step, id, err)
			}
			wc.wires = wires
			if _, err := s.ps.AddPush(id, wires); err != nil {
				return err
			}
			s.mu.Lock()
			s.pushBytes += int64(len(payload))
			s.mu.Unlock()
		}

		pull, _, err := s.ps.FinishStep()
		if err != nil {
			return err
		}
		pullBuf = append(pullBuf[:0], 0, 0, 0, 0)
		le.PutUint32(pullBuf, uint32(step))
		payload := AppendWireSet(pullBuf, pull)
		pullBuf = payload
		for _, wc := range conns {
			s.to.beforeWrite(wc.c)
			if err := WriteFrame(wc.rw, MsgPull, payload); err != nil {
				return fmt.Errorf("transport: step %d pull to worker %d: %w", step, wc.id, err)
			}
			if err := wc.rw.Flush(); err != nil {
				return fmt.Errorf("transport: step %d flush to worker %d: %w", step, wc.id, err)
			}
			s.mu.Lock()
			s.pullBytes += int64(len(payload))
			s.mu.Unlock()
		}
	}
	return nil
}
