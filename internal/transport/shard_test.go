package transport

import (
	"net"
	"strings"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/shard"
	"threelc/internal/tensor"
)

func shardTestConfig(workers, steps int) ps.Config {
	return ps.Config{
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.5, ZeroRun: true},
		Workers:          workers,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(workers, steps),
	}
}

func buildShardModel() *nn.Model { return nn.NewMLP(12, []int{16, 10}, 4, 7) }

// mustSubServers builds the per-shard sub-servers or fails the test; the
// wire tests all run over assignments SubServers accepts by construction.
func mustSubServers(t testing.TB, g *nn.Model, cfg ps.Config, asn shard.Assignment) []*ps.Job {
	t.Helper()
	subs, err := shard.SubServers(g, cfg, asn)
	if err != nil {
		t.Fatalf("SubServers: %v", err)
	}
	return subs
}

// driveWorker runs one worker's BSP loop through a push/pull function.
func driveWorker(t *testing.T, w int, steps int, cfg ps.Config,
	global *nn.Model, pushPull func(step int, wires [][]byte) ([][]byte, error)) {
	t.Helper()
	m := buildShardModel()
	m.CopyParamsFrom(global)
	wk := ps.NewWorker(w, m, cfg)
	rng := tensor.NewRNG(1000 + uint64(w))
	for step := 0; step < steps; step++ {
		x := tensor.New(6, 12)
		tensor.FillNormal(x, 1, rng)
		labels := make([]int, 6)
		for i := range labels {
			labels[i] = (step + w + i) % 4
		}
		wk.Model.TrainStep(x, labels)
		wires, _ := wk.CompressGrads()
		pull, err := pushPull(step, wires)
		if err != nil {
			t.Errorf("worker %d step %d: %v", w, step, err)
			return
		}
		if _, err := wk.ApplyPull(pull); err != nil {
			t.Errorf("worker %d step %d apply: %v", w, step, err)
			return
		}
	}
}

// referenceWeights runs the same workload through the in-process single
// server and returns the final global weights.
func referenceWeights(t *testing.T, workers, steps int) []float32 {
	cfg := shardTestConfig(workers, steps)
	global := buildShardModel()
	srv := ps.NewServer(global, cfg)
	ws := make([]*ps.Worker, workers)
	rngs := make([]*tensor.RNG, workers)
	for w := range ws {
		m := buildShardModel()
		m.CopyParamsFrom(global)
		ws[w] = ps.NewWorker(w, m, cfg)
		rngs[w] = tensor.NewRNG(1000 + uint64(w))
	}
	for step := 0; step < steps; step++ {
		srv.BeginStep()
		wires := make([][][]byte, workers)
		for w, wk := range ws {
			x := tensor.New(6, 12)
			tensor.FillNormal(x, 1, rngs[w])
			labels := make([]int, 6)
			for i := range labels {
				labels[i] = (step + w + i) % 4
			}
			wk.Model.TrainStep(x, labels)
			wires[w], _ = wk.CompressGrads()
		}
		for w := range ws {
			if _, err := srv.AddPush(w, wires[w]); err != nil {
				t.Fatal(err)
			}
		}
		pulls, _, err := srv.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for _, wk := range ws {
			if _, err := wk.ApplyPull(pulls); err != nil {
				t.Fatal(err)
			}
		}
	}
	var flat []float32
	for _, p := range global.Params() {
		flat = append(flat, p.W.Data()...)
	}
	return flat
}

// TestShardedTCPMatchesSinglePS runs a 3-shard tier over loopback TCP with
// multiplexed clients and checks the final sharded global state is
// bit-identical to the in-process single-server run.
func TestShardedTCPMatchesSinglePS(t *testing.T) {
	const workers, steps, shards = 2, 3, 3
	cfg := shardTestConfig(workers, steps)

	global := buildShardModel()
	asn := shard.ForModel(global, shards)
	subs := mustSubServers(t, global, cfg, asn)

	addrs := make([]string, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		srv := NewShardServer(ln, subs[s], ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        workers,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
		})
		go func() { serveErr <- srv.Serve() }()
	}

	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			// Each worker computes the placement from its own replica —
			// the determinism the handshake hash then certifies.
			cl, err := DialSharded(addrs, w, shard.ForModel(buildShardModel(), shards))
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			driveWorker(t, w, steps, cfg, global, cl.PushPull)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			t.Fatalf("shard serve: %v", err)
		}
	}

	want := referenceWeights(t, workers, steps)
	var got []float32
	for _, p := range global.Params() {
		got = append(got, p.W.Data()...)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d differs: single %v sharded-tcp %v", i, want[i], got[i])
		}
	}
}

// driveWorkerStream runs one worker's BSP loop through the streamed
// per-tensor pipeline: compression emits tensors into the push stream as
// they finish, and the pull is decode-applied per tensor as frames land.
func driveWorkerStream(t *testing.T, w int, steps int, cfg ps.Config, global *nn.Model, cl *ShardClient) {
	t.Helper()
	m := buildShardModel()
	m.CopyParamsFrom(global)
	wk := ps.NewWorker(w, m, cfg)
	params := len(m.Params())
	rng := tensor.NewRNG(1000 + uint64(w))
	for step := 0; step < steps; step++ {
		x := tensor.New(6, 12)
		tensor.FillNormal(x, 1, rng)
		labels := make([]int, 6)
		for i := range labels {
			labels[i] = (step + w + i) % 4
		}
		wk.Model.TrainStep(x, labels)
		ch := make(chan IndexedWire, params)
		go func() {
			wk.CompressGradsStream(func(i int, wire []byte) {
				ch <- IndexedWire{I: i, Wire: wire}
			})
			close(ch)
		}()
		if err := cl.PushPullStream(step, ch, wk.ApplyPullTensor); err != nil {
			t.Errorf("worker %d step %d stream: %v", w, step, err)
			return
		}
	}
}

// TestStreamedTCPMatchesSinglePS runs the per-tensor streamed pipeline —
// worker 0 streams (push frames emitted while later tensors still
// compress, pull frames decode-applied double-buffered), worker 1 stays
// on the whole-set path — over a 2-shard TCP tier and checks the final
// global state is bit-identical to the in-process single server. Mixing
// the modes on one tier pins their interoperability.
func TestStreamedTCPMatchesSinglePS(t *testing.T) {
	const workers, steps, shards = 2, 3, 2
	cfg := shardTestConfig(workers, steps)

	global := buildShardModel()
	asn := shard.ForModel(global, shards)
	subs := mustSubServers(t, global, cfg, asn)

	addrs := make([]string, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		srv := NewShardServer(ln, subs[s], ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        workers,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
		})
		go func() { serveErr <- srv.Serve() }()
	}

	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			cl, err := DialSharded(addrs, w, shard.ForModel(buildShardModel(), shards))
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			if w == 0 {
				driveWorkerStream(t, w, steps, cfg, global, cl)
			} else {
				driveWorker(t, w, steps, cfg, global, cl.PushPull)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			t.Fatalf("shard serve: %v", err)
		}
	}

	want := referenceWeights(t, workers, steps)
	var got []float32
	for _, p := range global.Params() {
		got = append(got, p.W.Data()...)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d differs: single %v streamed-tcp %v", i, want[i], got[i])
		}
	}
}

// TestStreamedPushRejectsMalformedStream pins the streamed push's
// protocol enforcement: a duplicate tensor slot, and an end-of-push with
// tensors missing, must fail the step with an error instead of silently
// skewing the aggregate.
func TestStreamedPushRejectsMalformedStream(t *testing.T) {
	run := func(t *testing.T, drive func(rw interface {
		Flush() error
	}, write func(mt MsgType, payload []byte)), wantErr string) {
		t.Helper()
		cfg := shardTestConfig(1, 1)
		global := buildShardModel()
		asn := shard.ForModel(global, 1)
		subs := mustSubServers(t, global, cfg, asn)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewShardServer(ln, subs[0], ShardServerConfig{
			Shard: 0, NumShards: 1, Workers: 1, Steps: 1, AssignmentHash: asn.Hash(),
		})
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve() }()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rw := newConnRW(c)
		write := func(mt MsgType, payload []byte) {
			if err := WriteFrame(rw, mt, payload); err != nil {
				t.Fatal(err)
			}
		}
		hello := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion})
		var hb [4]byte
		le.PutUint32(hb[:], asn.Hash())
		write(MsgShardHello, append(hello, hb[:]...))
		drive(rw, write)
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		serveErr := <-errc
		if serveErr == nil || !strings.Contains(serveErr.Error(), wantErr) {
			t.Fatalf("Serve() = %v, want error containing %q", serveErr, wantErr)
		}
	}

	tensorFrame := func(slot uint32) []byte {
		p := AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion})
		var sb [4]byte
		le.PutUint32(sb[:], slot)
		return append(p, sb[:]...) // empty wire body
	}
	endFrame := func() []byte {
		return AppendShardHeader(nil, ShardHeader{Version: ShardWireVersion})
	}

	t.Run("duplicate slot", func(t *testing.T) {
		run(t, func(_ interface{ Flush() error }, write func(MsgType, []byte)) {
			write(MsgShardPushTensor, tensorFrame(0))
			write(MsgShardPushTensor, tensorFrame(0))
		}, "duplicate push tensor slot")
	})
	t.Run("incomplete push", func(t *testing.T) {
		run(t, func(_ interface{ Flush() error }, write func(MsgType, []byte)) {
			write(MsgShardPushTensor, tensorFrame(0))
			write(MsgShardPushEnd, endFrame())
		}, "incomplete push")
	})
}

// TestShardServerAcceptsLegacyV1Client pins backward compatibility: a
// 1-shard ShardServer speaks the v1 wire format with an old Client.
func TestShardServerAcceptsLegacyV1Client(t *testing.T) {
	const workers, steps = 2, 2
	cfg := shardTestConfig(workers, steps)
	global := buildShardModel()
	asn := shard.ForModel(global, 1)
	subs := mustSubServers(t, global, cfg, asn)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewShardServer(ln, subs[0], ShardServerConfig{
		Shard: 0, NumShards: 1, Workers: workers, Steps: steps, AssignmentHash: asn.Hash(),
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			cl, err := Dial(ln.Addr().String(), w) // v1 client
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			driveWorker(t, w, steps, cfg, global, cl.PushPull)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	want := referenceWeights(t, workers, steps)
	var got []float32
	for _, p := range global.Params() {
		got = append(got, p.W.Data()...)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d differs via legacy client: %v vs %v", i, want[i], got[i])
		}
	}
}

// TestShardServerRejectsPlacementDrift: a worker whose model layout hashes
// differently must be refused at the handshake.
func TestShardServerRejectsPlacementDrift(t *testing.T) {
	cfg := shardTestConfig(1, 1)
	global := buildShardModel()
	asn := shard.ForModel(global, 2)
	subs := mustSubServers(t, global, cfg, asn)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewShardServer(ln, subs[0], ShardServerConfig{
		Shard: 0, NumShards: 2, Workers: 1, Steps: 1, AssignmentHash: asn.Hash(),
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	bad := asn
	bad.ShardOf = append([]int(nil), asn.ShardOf...)
	bad.ShardOf[0] = 1 - bad.ShardOf[0]
	if _, err := DialSharded([]string{ln.Addr().String(), ln.Addr().String()}, 0, bad); err == nil {
		// Dial itself may succeed (the write is buffered); the server must
		// still reject the session.
		t.Log("dial succeeded; checking server-side rejection")
	}
	err = <-serveErr
	if err == nil || !strings.Contains(err.Error(), "placement hash") {
		t.Fatalf("server error %v, want placement-hash rejection", err)
	}
}

func TestShardHeaderRoundTrip(t *testing.T) {
	h := ShardHeader{Version: ShardWireVersion, Shard: 513, Worker: 70000, Step: 1 << 30}
	buf := AppendShardHeader(nil, h)
	if len(buf) != ShardHeaderLen {
		t.Fatalf("encoded length %d, want %d", len(buf), ShardHeaderLen)
	}
	got, rest, err := ParseShardHeader(append(buf, 0xAA, 0xBB))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v != %+v", got, h)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("rest = %x", rest)
	}

	bad := append([]byte(nil), buf...)
	bad[0] = ShardWireVersion + 1
	if _, _, err := ParseShardHeader(bad); err == nil {
		t.Error("future version accepted")
	}
	bad = append([]byte(nil), buf...)
	bad[1] = 0x01
	if _, _, err := ParseShardHeader(bad); err == nil {
		t.Error("unknown flag bits accepted")
	}
	if _, _, err := ParseShardHeader(buf[:ShardHeaderLen-1]); err == nil {
		t.Error("short header accepted")
	}
}

// TestShardClientAddressCountMismatch pins the obvious misconfiguration.
func TestShardClientAddressCountMismatch(t *testing.T) {
	asn := shard.Assignment{NumShards: 2, ShardOf: []int{0, 1}}
	if _, err := DialSharded([]string{"127.0.0.1:1"}, 0, asn); err == nil ||
		!strings.Contains(err.Error(), "shard addresses") {
		t.Fatalf("err = %v, want address-count mismatch", err)
	}
}
