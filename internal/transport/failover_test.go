package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"threelc/internal/shard"
)

// runFailoverScenario runs a replicated 2-shard tier over loopback TCP,
// kills shard 0's primary at killStep (abruptly or silently), lets the
// workers fail over to the replica, and checks the surviving tier's model
// state is bit-identical to the in-process single-PS reference.
func runFailoverScenario(t *testing.T, silent bool) {
	const workers, steps, shards, killStep = 2, 6, 2, 3
	cfg := shardTestConfig(workers, steps)
	// Server-side deadlines stay wide: a BSP push read legitimately spans
	// the barrier, which includes another worker's 1s failover detection.
	to := Timeouts{Read: 30 * time.Second, Write: 10 * time.Second}
	clientTo := to
	if silent {
		// A silently dead primary is only detectable through the CLIENT's
		// read deadline; keep it short so the test converges quickly.
		clientTo.Read = time.Second
	}

	global := buildShardModel()
	asn := shard.ForModel(global, shards)
	subs := mustSubServers(t, global, cfg, asn)
	// The replicas run their own sub-servers over their OWN model replica:
	// replicated state must never alias the primary's tensors.
	replicaModel := buildShardModel()
	replicaModel.CopyParamsFrom(global)
	repSubs := mustSubServers(t, replicaModel, cfg, asn)

	listen := func() (net.Listener, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return ln, ln.Addr().String()
	}
	addrs := make([]string, shards)
	raddrs := make([]string, shards)
	repErr := make(chan error, shards)
	primErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		rln, raddr := listen()
		raddrs[s] = raddr
		go func(s int) {
			repErr <- NewShardReplica(rln, repSubs[s], ShardServerConfig{
				Shard:          s,
				NumShards:      shards,
				Workers:        workers,
				Steps:          steps,
				AssignmentHash: asn.Hash(),
				Timeouts:       to,
			}).Serve()
		}(s)
	}
	for s := 0; s < shards; s++ {
		ln, addr := listen()
		addrs[s] = addr
		scfg := ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        workers,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
			Timeouts:       to,
			ReplicaAddr:    raddrs[s],
		}
		if s == 0 {
			scfg.KillAtStep = killStep
			scfg.KillSilent = silent
		}
		srv := NewShardServer(ln, subs[s], scfg)
		go func() { primErr <- srv.Serve() }()
	}

	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			cl, err := DialShardedConfig(addrs, w, shard.ForModel(buildShardModel(), shards),
				ShardClientConfig{Replicas: raddrs, Timeouts: clientTo})
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			driveWorker(t, w, steps, cfg, global, cl.PushPull)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	killed, alive := 0, 0
	for s := 0; s < shards; s++ {
		switch err := <-primErr; {
		case err == nil:
			alive++
		case errors.Is(err, ErrShardKilled):
			killed++
		default:
			t.Fatalf("primary serve: %v", err)
		}
	}
	if killed != 1 || alive != 1 {
		t.Fatalf("expected 1 killed + 1 surviving primary, got %d + %d", killed, alive)
	}
	for s := 0; s < shards; s++ {
		if err := <-repErr; err != nil {
			t.Fatalf("replica serve: %v", err)
		}
	}

	// The replica tier — which took over shard 0 mid-run and followed
	// shard 1 by forwarding — must hold the single-PS reference state
	// bit-for-bit for EVERY tensor.
	want := referenceWeights(t, workers, steps)
	var rep []float32
	for _, p := range replicaModel.Params() {
		rep = append(rep, p.W.Data()...)
	}
	for i := range want {
		if want[i] != rep[i] {
			t.Fatalf("replica weight %d differs from single-PS reference: %v != %v", i, rep[i], want[i])
		}
	}
	// The surviving primary's slice (shard 1 lives in `global`) must agree
	// too — replication never disturbed the primary path.
	gp := global.Params()
	for _, gi := range asn.Tensors(1) {
		a, b := gp[gi].W.Data(), replicaModel.Params()[gi].W.Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("surviving shard tensor %d diverges between primary and replica", gi)
			}
		}
	}
}

func TestFailoverKilledShardMatchesSinglePS(t *testing.T) {
	runFailoverScenario(t, false)
}

func TestFailoverSilentDeathDetectedByDeadline(t *testing.T) {
	runFailoverScenario(t, true)
}

// TestDialShardedUnreachableShardReturnsError: a dead shard address at
// dial time must come back as an error from DialSharded, not a panic
// from closing a never-opened connection.
func TestDialShardedUnreachableShardReturnsError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead, _ := net.Listen("tcp", "127.0.0.1:0")
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens here anymore
	defer ln.Close()
	asn := shard.ForModel(buildShardModel(), 2)
	if _, err := DialSharded([]string{ln.Addr().String(), deadAddr}, 0, asn); err == nil {
		t.Fatal("expected dial error for unreachable shard")
	}
}

// TestClientReadDeadlineSurfacesTimeout: a server that accepts a worker
// and then goes silent must fail the blocked PushPull with a net.Error
// timeout once the read deadline passes — not hang forever.
func TestClientReadDeadlineSurfacesTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	defer close(hold)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		<-hold // read nothing, answer nothing: a silently dead server
	}()

	cl, err := DialTimeout(ln.Addr().String(), 0, Timeouts{Read: 100 * time.Millisecond, Write: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.PushPull(0, [][]byte{{byte(0)}})
	if err == nil {
		t.Fatal("expected timeout error from PushPull against a silent server")
	}
	if !IsTimeout(err) {
		t.Fatalf("error %v is not a net.Error timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}
