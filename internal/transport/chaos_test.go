package transport

import (
	"net"
	"testing"
	"time"

	"threelc/internal/chaos"
	"threelc/internal/shard"
)

// TestChaosSoakTCPMatchesSinglePS is the in-tree half of the chaos
// contract (the full multi-codec soak lives behind `3lc-net -chaos`): a
// 2-shard resilient tier runs over loopback TCP with a seeded fault
// injector on both the listeners and the client dialer, and the final
// global weights must still be BIT-identical to the clean in-process
// single-server run. Bit flips are caught by CRC-32C and replayed;
// truncates and resets tear connections that the resilient seats
// reacquire — none of it may perturb a single weight. The test also
// fails if the injector dealt no faults, so a config drift that
// silently disables injection cannot pass vacuously.
func TestChaosSoakTCPMatchesSinglePS(t *testing.T) {
	const workers, steps, shards = 2, 6, 2
	cfg := shardTestConfig(workers, steps)

	global := buildShardModel()
	asn := shard.ForModel(global, shards)
	subs := mustSubServers(t, global, cfg, asn)

	inj := chaos.New(chaos.Config{
		Seed:      7,
		BitFlip:   0.03,
		Truncate:  0.01,
		Reset:     0.01,
		DelayProb: 0.02,
		Delay:     5 * time.Millisecond,
		MaxFaults: 48,
	})
	to := Timeouts{Read: 2 * time.Second, Write: 2 * time.Second}
	pol := RetryPolicy{
		MaxAttempts: 8,
		Base:        20 * time.Millisecond,
		Cap:         200 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        7,
	}

	addrs := make([]string, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		srv := NewShardServer(inj.WrapListener(ln), subs[s], ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        workers,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
			Timeouts:       to,
			Resilient:      true,
		})
		go func() { serveErr <- srv.Serve() }()
	}

	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			// The injector can kill a connection during the handshake
			// itself, so even the dial needs the retry schedule.
			var cl *ShardClient
			var err error
			dialPol := pol.Stream(uint64(w))
			for attempt := 0; attempt < 10; attempt++ {
				cl, err = DialShardedConfig(addrs, w, shard.ForModel(buildShardModel(), shards),
					ShardClientConfig{
						Timeouts:  to,
						Checksum:  true,
						Resilient: true,
						Retry:     pol,
						Dialer:    inj.Dial,
					})
				if err == nil {
					break
				}
				time.Sleep(dialPol.Backoff(attempt))
			}
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			driveWorker(t, w, steps, cfg, global, cl.PushPull)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			t.Fatalf("shard serve: %v", err)
		}
	}

	if st := inj.Stats(); st.Total() == 0 {
		t.Fatalf("injector dealt no faults (%v): the soak proved nothing", st)
	} else {
		t.Logf("chaos: %v", st)
	}

	want := referenceWeights(t, workers, steps)
	var got []float32
	for _, p := range global.Params() {
		got = append(got, p.W.Data()...)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d diverged under chaos: clean %v chaotic %v", i, want[i], got[i])
		}
	}
}
