// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), plus micro-benchmarks of each pipeline stage and ablation benches
// for the design choices DESIGN.md calls out.
//
// Table/figure benches run a miniature experiment suite (3 workers, small
// MLP) per iteration and report the headline quantities as custom metrics;
// the full-scale reproduction is `go run ./cmd/3lc-bench -exp all`.
package threelc_test

import (
	"io"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/encode"
	"threelc/internal/entropy"
	"threelc/internal/experiments"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/quant"
	"threelc/internal/tensor"
	"threelc/internal/train"
)

// --- Micro-benchmarks: pipeline stages ------------------------------------

const microN = 1 << 20 // 1M elements, ResNet-110 scale

func gradientTensor(seed uint64, n int) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	t := tensor.New(n)
	tensor.FillNormal(t, 0.01, rng)
	return t
}

func BenchmarkQuantize3(b *testing.B) {
	in := gradientTensor(1, microN)
	b.SetBytes(4 * microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.Quantize3(in, 1.0)
	}
}

func BenchmarkDequantize3(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(1, microN), 1.0)
	out := tensor.New(microN)
	b.SetBytes(4 * microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.DequantizeInto(tv, out)
	}
}

func BenchmarkQuarticEncode(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(2, microN), 1.0)
	dst := make([]byte, encode.QuarticEncodedLen(microN))
	b.SetBytes(int64(microN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode.QuarticEncodeInto(tv.Q, dst)
	}
}

func BenchmarkQuarticDecode(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(2, microN), 1.0)
	enc := encode.QuarticEncode(tv.Q)
	dst := make([]int8, microN)
	b.SetBytes(int64(microN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode.QuarticDecodeInto(enc, dst)
	}
}

func BenchmarkZeroRunEncode(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(3, microN), 1.75)
	qe := encode.QuarticEncode(tv.Q)
	b.SetBytes(int64(len(qe)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode.ZeroRunEncode(qe)
	}
}

func BenchmarkZeroRunDecode(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(3, microN), 1.75)
	qe := encode.QuarticEncode(tv.Q)
	zre := encode.ZeroRunEncode(qe)
	dst := make([]byte, len(qe))
	b.SetBytes(int64(len(qe)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode.ZeroRunDecodeInto(zre, dst)
	}
}

// BenchmarkCompressScheme measures end-to-end Compress for every design at
// 1M elements, reporting bits per state change.
func BenchmarkCompressScheme(b *testing.B) {
	cases := []struct {
		name string
		s    compress.Scheme
		o    compress.Options
	}{
		{"float32", compress.SchemeNone, compress.Options{}},
		{"int8", compress.SchemeInt8, compress.Options{}},
		{"stoch3", compress.SchemeStoch3QE, compress.Options{Seed: 1}},
		{"mqe1bit", compress.SchemeMQE1Bit, compress.Options{}},
		{"sparse25", compress.SchemeTopK, compress.Options{Fraction: 0.25, Seed: 1}},
		{"sparse5", compress.SchemeTopK, compress.Options{Fraction: 0.05, Seed: 1}},
		{"3lc-s1.00", compress.SchemeThreeLC, compress.Options{Sparsity: 1.0, ZeroRun: true}},
		{"3lc-s1.75", compress.SchemeThreeLC, compress.Options{Sparsity: 1.75, ZeroRun: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			in := gradientTensor(4, microN)
			ctx := compress.New(c.s, []int{microN}, c.o)
			b.SetBytes(4 * microN)
			wire := ctx.CompressInto(in, nil) // warm up scratch capacities
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wire = ctx.CompressInto(in, wire[:0])
			}
			b.ReportMetric(float64(len(wire))*8/float64(microN), "bits/elem")
		})
	}
}

func BenchmarkDecompress3LC(b *testing.B) {
	ctx := compress.New(compress.SchemeThreeLC, []int{microN}, compress.Options{Sparsity: 1.75, ZeroRun: true})
	wire := ctx.Compress(gradientTensor(5, microN))
	out := tensor.New(microN)
	b.SetBytes(4 * microN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := compress.DecompressInto(wire, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZeroTensor280x verifies the paper's §3.3 hypothetical: an
// all-zero float tensor compresses 280x end to end.
func BenchmarkZeroTensor280x(b *testing.B) {
	in := tensor.New(microN)
	ctx := compress.New(compress.SchemeThreeLC, []int{microN}, compress.Options{Sparsity: 1.0, ZeroRun: true})
	var wire []byte
	b.SetBytes(4 * microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = ctx.Compress(in)
	}
	// Subtract the 6-byte header the paper's arithmetic ignores.
	b.ReportMetric(float64(4*microN)/float64(len(wire)-6), "ratio")
}

// --- Table/figure reproductions --------------------------------------------

// benchSuite builds the miniature experiment suite used by the table and
// figure benchmarks.
func benchSuite() *experiments.Suite {
	opt := experiments.DefaultOptions()
	opt.Workers = 3
	opt.BatchPerWorker = 8
	opt.StandardSteps = 16
	opt.EvalEvery = 8
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 200, 60
	opt.Data = dcfg
	opt.Hidden = []int{12}
	opt.Progress = io.Discard
	return opt2suite(opt)
}

func opt2suite(opt experiments.Options) *experiments.Suite {
	return experiments.NewSuite(opt)
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := experiments.Table1(s)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: 3LC (s=1.00) speedup at 10 Mbps.
		for _, r := range rows {
			if r.Design == "3LC (s=1.00)" {
				b.ReportMetric(r.Speedup["10 Mbps"], "3lc-speedup@10M")
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := experiments.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].CompressionRatio, "ratio-s1.00")
		b.ReportMetric(rows[1].BitsPerChange, "bits-s1.00")
	}
}

func benchFigure(b *testing.B, f func(*experiments.Suite) ([]experiments.Curve, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		curves, err := f(s)
		if err != nil {
			b.Fatal(err)
		}
		last := curves[len(curves)-1]
		b.ReportMetric(last.Points[len(last.Points)-1].Accuracy, "final-acc-pct")
	}
}

func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6) }
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		series, err := experiments.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].Loss[len(series[0].Loss)-1], "baseline-final-loss")
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		series, err := experiments.Figure9(s)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, v := range series[0].PushBits {
			mean += v
		}
		b.ReportMetric(mean/float64(len(series[0].PushBits)), "push-bits-s1.00")
	}
}

// --- Ablation benches (design choices from DESIGN.md) ----------------------

// BenchmarkAblationQuarticVs2Bit compares quartic encoding against the
// 2-bit packing TernGrad uses; the paper claims a 20% size saving (§3.2).
func BenchmarkAblationQuarticVs2Bit(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(6, microN), 1.0)
	pack2bit := func(q []int8) []byte {
		out := make([]byte, (len(q)+3)/4)
		for i, v := range q {
			out[i>>2] |= byte(v+1) << (uint(i&3) * 2)
		}
		return out
	}
	b.Run("quartic", func(b *testing.B) {
		b.SetBytes(int64(microN))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(encode.QuarticEncode(tv.Q))
		}
		b.ReportMetric(float64(n)*8/float64(microN), "bits/elem")
	})
	b.Run("2bit", func(b *testing.B) {
		b.SetBytes(int64(microN))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(pack2bit(tv.Q))
		}
		b.ReportMetric(float64(n)*8/float64(microN), "bits/elem")
	})
}

// BenchmarkAblationZREvsEntropyCoding compares zero-run encoding against
// the general-purpose coders the paper cites (§3.3: "Compared to
// general-purpose compression algorithms or entropy coding schemes,
// zero-run encoding is simple to implement and fast to run"): a canonical
// Huffman coder and a Snappy-like LZ. Each sub-benchmark reports its
// compression ratio over the same quartic-encoded gradient data, so
// throughput (ns/op, MB/s) and ratio can be compared side by side.
func BenchmarkAblationZREvsEntropyCoding(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(20, microN), 1.75)
	qe := encode.QuarticEncode(tv.Q)
	b.Run("zero-run", func(b *testing.B) {
		b.SetBytes(int64(len(qe)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(encode.ZeroRunEncode(qe))
		}
		b.ReportMetric(float64(len(qe))/float64(n), "ratio")
	})
	b.Run("huffman", func(b *testing.B) {
		b.SetBytes(int64(len(qe)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(entropy.HuffmanEncode(qe))
		}
		b.ReportMetric(float64(len(qe))/float64(n), "ratio")
	})
	b.Run("lz", func(b *testing.B) {
		b.SetBytes(int64(len(qe)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(entropy.LZEncode(qe))
		}
		b.ReportMetric(float64(len(qe))/float64(n), "ratio")
	})
}

// BenchmarkAblationBackupWorkers quantifies the straggler mitigation of
// §2.1: virtual training time under heavy compute jitter with and without
// one backup worker.
func BenchmarkAblationBackupWorkers(b *testing.B) {
	run := func(b *testing.B, backup int) {
		for i := 0; i < b.N; i++ {
			dcfg := data.DefaultConfig()
			dcfg.Train, dcfg.Test = 150, 40
			in := dcfg.C * dcfg.H * dcfg.W
			cfg := train.Config{
				Design:           train.Design{Name: "32-bit float", Scheme: compress.SchemeNone},
				Workers:          4,
				BatchPerWorker:   8,
				Steps:            12,
				Data:             dcfg,
				BuildModel:       func() *nn.Model { return nn.NewMLP(in, []int{12}, dcfg.Classes, 1) },
				FlatInput:        true,
				Net:              netsim.DefaultParams(netsim.Gbps1),
				RecordSteps:      true,
				Seed:             1,
				BackupWorkers:    backup,
				ComputeJitterStd: 0.8,
			}
			cfg.Net.Workers = 4
			r, err := train.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.TotalVirtualSec, "virtual-sec")
		}
	}
	b.Run("bsp", func(b *testing.B) { run(b, 0) })
	b.Run("backup-1", func(b *testing.B) { run(b, 1) })
}

// BenchmarkAblationZRCvsGenericRLE compares zero-run encoding with a
// generic byte-level RLE (which spends bytes on run lengths for every
// value, not just 121).
func BenchmarkAblationZRCvsGenericRLE(b *testing.B) {
	tv := quant.Quantize3(gradientTensor(7, microN), 1.75)
	qe := encode.QuarticEncode(tv.Q)
	genericRLE := func(in []byte) []byte {
		out := make([]byte, 0, len(in))
		for i := 0; i < len(in); {
			j := i + 1
			for j < len(in) && in[j] == in[i] && j-i < 255 {
				j++
			}
			out = append(out, in[i], byte(j-i))
			i = j
		}
		return out
	}
	b.Run("zero-run", func(b *testing.B) {
		b.SetBytes(int64(len(qe)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(encode.ZeroRunEncode(qe))
		}
		b.ReportMetric(float64(len(qe))/float64(n), "ratio")
	})
	b.Run("generic-rle", func(b *testing.B) {
		b.SetBytes(int64(len(qe)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(genericRLE(qe))
		}
		b.ReportMetric(float64(len(qe))/float64(n), "ratio")
	})
}

// BenchmarkAblationErrorAccumVsStochastic compares the accuracy impact of
// 3LC's deterministic quantization + error accumulation against stochastic
// quantization at equal bit budget (the paper's §3.1 design rationale).
// It reports mean squared reconstruction error of the accumulated stream —
// the quantity error feedback drives to zero and stochastic noise keeps.
func BenchmarkAblationErrorAccumVsStochastic(b *testing.B) {
	const n = 1 << 16
	const rounds = 50
	run := func(b *testing.B, scheme compress.Scheme, o compress.Options) {
		for i := 0; i < b.N; i++ {
			ctx := compress.New(scheme, []int{n}, o)
			rng := tensor.NewRNG(uint64(i) + 99)
			inSum := tensor.New(n)
			outSum := tensor.New(n)
			in := tensor.New(n)
			for r := 0; r < rounds; r++ {
				tensor.FillNormal(in, 0.01, rng)
				inSum.Add(in)
				out, err := compress.Decompress(ctx.Compress(in), []int{n})
				if err != nil {
					b.Fatal(err)
				}
				outSum.Add(out)
			}
			diff := inSum.Clone()
			diff.Sub(outSum)
			b.ReportMetric(diff.SquaredNorm()/float64(n), "cum-mse")
		}
	}
	b.Run("error-accum", func(b *testing.B) {
		run(b, compress.SchemeThreeLC, compress.Options{Sparsity: 1.0, ZeroRun: true})
	})
	b.Run("stochastic", func(b *testing.B) {
		run(b, compress.SchemeStoch3QE, compress.Options{Seed: 5})
	})
}

// BenchmarkAblationSparsityVsThreshold compares how well the sparsity
// multiplier and hard thresholding preserve the mean magnitude of a tensor
// at matched sparsity (§3.1 "dequantization using sparsity multiplication
// enlarges (now scarcer) large values, better preserving the average
// magnitude of the input tensor").
func BenchmarkAblationSparsityVsThreshold(b *testing.B) {
	const n = 1 << 18
	in := gradientTensor(8, n)
	meanAbs := in.MeanAbs()

	b.Run("sparsity-mult", func(b *testing.B) {
		var kept float64
		for i := 0; i < b.N; i++ {
			tv := quant.Quantize3(in, 1.75)
			out := quant.Dequantize3(tv)
			kept = out.MeanAbs() / meanAbs
		}
		b.ReportMetric(kept, "magnitude-retention")
	})
	b.Run("threshold", func(b *testing.B) {
		// Match the zero count of s=1.75, then zero everything below the
		// threshold without rescaling — the sparsification approach.
		tv := quant.Quantize3(in, 1.75)
		thr := tv.M / 2
		var kept float64
		for i := 0; i < b.N; i++ {
			out := in.Clone()
			d := out.Data()
			for j, v := range d {
				if v < thr && v > -thr {
					d[j] = 0
				}
			}
			kept = out.MeanAbs() / meanAbs
		}
		b.ReportMetric(kept, "magnitude-retention")
	})
}

// BenchmarkAblationSharedPull measures the server-side saving of
// compressing model deltas once for all workers versus once per worker
// (§3's shared-pull optimization).
func BenchmarkAblationSharedPull(b *testing.B) {
	const n = 1 << 18
	const workers = 10
	in := gradientTensor(9, n)
	b.Run("shared", func(b *testing.B) {
		ctx := compress.New(compress.SchemeThreeLC, []int{n}, compress.Options{Sparsity: 1.0, ZeroRun: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wire := ctx.Compress(in)
			_ = wire // one compression serves all workers
		}
	})
	b.Run("per-worker", func(b *testing.B) {
		ctxs := make([]compress.Compressor, workers)
		for w := range ctxs {
			ctxs[w] = compress.New(compress.SchemeThreeLC, []int{n}, compress.Options{Sparsity: 1.0, ZeroRun: true})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for w := 0; w < workers; w++ {
				_ = ctxs[w].Compress(in)
			}
		}
	})
}
