// Package threelc is a from-scratch Go reproduction of "3LC: Lightweight
// and Effective Traffic Compression for Distributed Machine Learning"
// (Lim, Andersen, Kaminsky — MLSys 2019).
//
// The hot path — per-tensor compression of gradient pushes and model-delta
// pulls, every training step — is built as a zero-allocation, fused
// single-pass pipeline. Compression contexts expose an append-style
// CompressInto(in, dst) API and recycle all scratch state across steps;
// decoding dispatches through a codec registry into caller-owned tensors.
// The per-element work of §3.1–§3.3 runs on internal/kernel's fused
// kernels rather than as staged sweeps:
//
//	stage                     staged sweeps    fused passes
//	compress (3LC)                 7                2
//	  accumulate + max|T|          2           1  (AccumulateMaxAbs)
//	  quantize → dequantize →
//	  residual → quartic → ZRE     5           1  (EncodeTernary)
//	decompress                     2                1
//	  ZRE expand + scaled unpack   2           1  (DecodeTernary, LUT)
//	decode + accumulate            2                1
//	  (aggregation: ZRE expand +
//	  unpack + sum += M·q)         2           1  (DecodeTernaryAdd, LUT)
//
// Aggregation — the server summing every worker's push — runs on the
// fused decode-accumulate kernels: one LUT-driven pass per payload
// streams wire bytes and adds M·q directly into the gradient sum, with
// no intermediate decode tensor (DecodeTernaryAdd; the range-partitioned
// DecodeTernaryAddParallel shards the sweep across all workers' payloads
// with deterministic, byte-identical sums). Payloads are validated by a
// wire-byte pre-scan before the first element is touched, so a malformed
// push can never corrupt live aggregation state. On the server the whole
// step is fused end to end: the optimizer update writes each model delta
// straight into the pull compressor's error-accumulation buffer while
// reducing max|acc| in the same sweep (opt.ApplyFusedStep +
// compress.PreAccumulator), so average → update → delta → compress
// pass 1 collapse into one pass per tensor.
//
// The push/aggregate pipeline is overlapped at tensor granularity across
// every layer:
//
//	worker:   compress tensor i+1 ──┐ (CompressGradsStream)
//	wire:     tensor i in flight ───┤ (per-tensor push frames)
//	server:   decode-add tensor i-1 ┘ (AddPushTensor, on frame arrival)
//
// In-process (train.Run), each accepted worker streams tensors into the
// aggregator the moment they are compressed and the server ingests them
// during other workers' compute; per-tensor ingestion stays in strict
// worker order, so the sums — and all results — are byte-identical to
// the serial driver. Over TCP, transport's streamed v2 frames
// (MsgShardPushTensor) let a shard decode-accumulate each tensor as its
// frame lands rather than after the full wire set, and pulls stream back
// per tensor into a double-buffered decode on the worker
// (ShardClient.PushPullStream). The staged decode-then-add aggregation
// remains as the bit-identical reference behind ps.Config.StagedAggregate.
//
// Decode is driven by a 243-entry lookup table (quartic byte → 5 ternary
// digits) expanded per wire scale M into byte → 5 scaled float32 values;
// the per-M expansion costs 243·5 multiplies, so tensors below ~4k
// elements decode through the int8 table with an inline multiply instead,
// and the expanded tables are pooled with the last M cached. Both compress
// passes shard across cores with byte-identical output (two-phase parallel
// max reduction; group-aligned fused encode with a per-chunk zero-run
// stitch-up), scheduled pass-count aware: each pass sizes its fan-out to
// its own per-element cost (kernel.PassWorkers). The staged primitives in
// internal/quant and internal/encode remain the bit-identical reference,
// pinned by differential tests and FuzzFusedVsStaged. In steady state a
// full push/pull codec round trip performs zero heap allocations (see the
// -benchmem benchmarks in internal/compress, internal/kernel, and
// internal/ps).
//
// The implementation lives under internal/:
//
//	internal/kernel      fused single-pass hot-path kernels: two-pass
//	                     compress (AccumulateMaxAbs + EncodeTernary),
//	                     one-pass LUT decode (DecodeTernary), one-pass
//	                     decode-accumulate (DecodeTernaryAdd + the
//	                     range-partitioned multi-payload parallel form),
//	                     chunked parallel forms, pass-count-aware
//	                     scheduling
//	internal/quant       3-value quantization with sparsity multiplication,
//	                     error accumulation, and the quantization baselines
//	                     (staged reference for the fused kernels)
//	internal/encode      quartic + zero-run encoding on caller buffers,
//	                     chunked parallel encode/decode (staged reference)
//	internal/sparse      top-k sparsification baselines
//	internal/compress    the Compressor interface, append-style wire
//	                     builders, and the decoder registry
//	internal/nn          the neural-network training substrate
//	internal/data        synthetic CIFAR-like datasets
//	internal/opt         momentum SGD + cosine decay + warmup
//	internal/netsim      bandwidth-emulating virtual cluster
//	internal/ps          parameter-server runtime (push/pull, shared pulls,
//	                     recycled wire buffers, bounded parallel codecs,
//	                     param-subset sub-servers for sharding)
//	internal/shard       sharded parameter-server tier: deterministic
//	                     tensor→shard placement (size-balanced bin packing
//	                     with a consistent-hash fallback) and the async
//	                     push/pull pipeline
//	internal/transport   framed TCP transport (coalesced single-write
//	                     frames, per-connection read scratch), plus the
//	                     versioned shard-aware v2 framing and multiplexed
//	                     per-shard connections
//	internal/train       distributed training driver + metrics
//	internal/experiments per-table/figure reproduction harness
//	internal/lint        3lc-lint analyzer suite enforcing the //3lc:
//	                     source contracts (noalloc, nopanic, poolsafe,
//	                     detonly); see internal/lint/doc.go
//
// The sharded tier (internal/shard) partitions the model's tensors across
// N parameter-server shards, each running the zero-allocation codec pool
// on its own goroutine behind a bounded request queue. The pipeline knobs
// are shard.Config: QueueDepth (per-shard outstanding-request budget),
// Window (the driver's in-flight request window), and Timeout/Retries
// (straggler-aware enqueue retry with exponential backoff; only failed
// enqueues are retried, so requests stay exactly-once and ordered).
// Placement is deterministic
// (shard.Assign: size-balanced LPT packing, consistent-hash ring when
// sizes are unknown) and the sharded tier's model state stays
// byte-identical to the single server's for every codec. train.Config's
// Shards knob routes a simulated run through the tier; transport's
// ShardServer/ShardClient run it over real sockets.
//
// Fault tolerance. The per-endpoint error-accumulation state that makes
// 3LC correct (unsent changes are retried at later steps) is exactly what
// makes it recoverable, and the system checkpoints, drops, and fails over
// around that state. internal/checkpoint's v2 format is a versioned,
// length-prefixed, CRC-checked section container capturing FULL training
// state — every model replica, opt.SGD momentum and schedule step, every
// codec's error-accumulation buffer and RNG stream (compress.Stateful),
// and the step counter — and train.Run writes it periodically off the hot
// path (serialize at the step boundary, write in the background;
// CheckpointPath/CheckpointEvery) with atomic temp-file + fsync + rename
// saves that keep the prior snapshot at .bak. A run resumed from a
// checkpoint (ResumeFrom, or `3lc-ckpt -resume`) reproduces the
// uninterrupted run's loss trajectory bit-identically for every codec.
// train.Config.Dropouts makes runs elastic: an absent worker's barrier
// slot is released (averaging divides by the pushes received), and on
// rejoin it replays the pulls it missed while its frozen push contexts
// fold the pre-dropout residual into its first push back — the paper's
// dropout-tolerance argument, pinned bit-identical to a staged reference
// driver. On the wire, every endpoint takes read/write deadlines
// (transport.Timeouts) so a dead peer surfaces as a net.Error timeout
// instead of a hang, and each shard can run a standby replica
// (transport.ShardReplica) fed by primary push forwarding: when a primary
// dies — abruptly or silently — workers reconnect to the replica and
// replay the in-flight push, deduplicated on the (worker, step) identity
// every push frame carries, with the surviving tier's model state
// byte-identical to the single-PS reference.
//
// Binaries: cmd/3lc-bench (regenerate every table and figure, plus the
// `-exp codec` pipeline micro-benchmark and the `-exp shard` shard-
// scaling sweep), cmd/3lc-train (single training run, with `-state`
// full-state checkpointing and `-resume`), cmd/3lc-net (training over
// real TCP, with `-replicas`/`-kill-shard` failover demo),
// cmd/3lc-compress (codec demo), cmd/3lc-ckpt (checkpoint inspection,
// evaluation, and resume), cmd/benchcheck (CI benchmark parser/gate),
// and cmd/3lc-lint (the //3lc: contract checker; run it as
// `go run ./cmd/3lc-lint ./...`). Runnable examples are under
// examples/. See README.md for a quickstart.
package threelc
