// Package threelc is a from-scratch Go reproduction of "3LC: Lightweight
// and Effective Traffic Compression for Distributed Machine Learning"
// (Lim, Andersen, Kaminsky — MLSys 2019).
//
// The hot path — per-tensor compression of gradient pushes and model-delta
// pulls, every training step — is built as a zero-allocation pipeline:
// compression contexts expose an append-style CompressInto(in, dst) API
// and recycle all scratch state across steps, decoding dispatches through
// a codec registry into caller-owned tensors with sync.Pool scratch, and
// quartic encoding (the dominant CPU cost, §5.1) shards across cores via
// encode.Chunked with byte-identical output. In steady state a full
// push/pull codec round trip performs zero heap allocations (see the
// -benchmem benchmarks in internal/compress and internal/ps).
//
// The implementation lives under internal/:
//
//	internal/quant       3-value quantization with sparsity multiplication,
//	                     error accumulation, and the quantization baselines
//	                     (all with buffer-reusing *Into forms)
//	internal/encode      quartic + zero-run encoding on caller buffers,
//	                     chunked parallel encode/decode
//	internal/sparse      top-k sparsification baselines
//	internal/compress    the Compressor interface, append-style wire
//	                     builders, and the decoder registry
//	internal/nn          the neural-network training substrate
//	internal/data        synthetic CIFAR-like datasets
//	internal/opt         momentum SGD + cosine decay + warmup
//	internal/netsim      bandwidth-emulating virtual cluster
//	internal/ps          parameter-server runtime (push/pull, shared pulls,
//	                     recycled wire buffers, bounded parallel codecs)
//	internal/transport   framed TCP transport (coalesced single-write
//	                     frames, per-connection read scratch)
//	internal/train       distributed training driver + metrics
//	internal/experiments per-table/figure reproduction harness
//
// Binaries: cmd/3lc-bench (regenerate every table and figure, plus the
// `-exp codec` pipeline micro-benchmark), cmd/3lc-train (single training
// run), cmd/3lc-net (training over real TCP), cmd/3lc-compress (codec
// demo). Runnable examples are under examples/. See README.md for a
// quickstart.
package threelc
