// Package threelc is a from-scratch Go reproduction of "3LC: Lightweight
// and Effective Traffic Compression for Distributed Machine Learning"
// (Lim, Andersen, Kaminsky — MLSys 2019).
//
// The implementation lives under internal/:
//
//	internal/quant       3-value quantization with sparsity multiplication,
//	                     error accumulation, and the quantization baselines
//	internal/encode      quartic encoding and zero-run encoding
//	internal/sparse      top-k sparsification baselines
//	internal/compress    the unified Compressor interface + wire formats
//	internal/nn          the neural-network training substrate
//	internal/data        synthetic CIFAR-like datasets
//	internal/opt         momentum SGD + cosine decay + warmup
//	internal/netsim      bandwidth-emulating virtual cluster
//	internal/ps          parameter-server runtime (push/pull, shared pulls)
//	internal/train       distributed training driver + metrics
//	internal/experiments per-table/figure reproduction harness
//
// Binaries: cmd/3lc-bench (regenerate every table and figure),
// cmd/3lc-train (single training run), cmd/3lc-compress (codec demo).
// Runnable examples are under examples/. See DESIGN.md and EXPERIMENTS.md.
package threelc
